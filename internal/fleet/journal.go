package fleet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"allarm/internal/server"
)

// journal is the router's crash-safe state directory (-state-dir):
//
//	sweeps/<id>.json            one journalSweep per accepted sweep
//	sweeps/<id>.records.ndjson  gathered-record checkpoint (one
//	                            checkpointLine per row already in hand)
//	membership.json             the current shard set, when it has been
//	                            mutated at runtime
//	traces/<id>                 raw uploaded trace bytes
//
// Every file is written with server.AtomicWrite (same-directory temp +
// rename), so a SIGKILL at any instant leaves each file either whole at
// its previous content or whole at its new content — never torn. The
// router journals a sweep before acknowledging it, checkpoints records
// as shard groups complete, and rewrites the entry with its terminal
// status when the gather finishes; recovery replays that state under
// the original ids and re-polls the shards for whatever is missing
// (content-addressed shard caches make the re-ask nearly free).
//
// A nil *journal disables persistence: every method no-ops, so the
// router never branches on whether -state-dir is set.
type journal struct {
	dir  string
	logf func(format string, args ...any)
}

// journalSweep is one persisted sweep: the original client request (the
// deterministic seed ExpandSweep re-expands at boot), the current
// shard assignment by global job index, and the lifecycle status.
type journalSweep struct {
	ID      string               `json:"id"`
	Created time.Time            `json:"created"`
	Status  string               `json:"status"`
	Request *server.SweepRequest `json:"request"`
	// Assignment maps shard name → the global job indices it owns.
	// Rewritten on requeue, so recovery re-polls the current owners.
	Assignment map[string][]int `json:"assignment"`
}

// openJournal creates (or reopens) the state directory.
func openJournal(dir string, logf func(string, ...any)) (*journal, error) {
	for _, d := range []string{dir, filepath.Join(dir, "sweeps"), filepath.Join(dir, "traces")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("state dir: %w", err)
		}
	}
	return &journal{dir: dir, logf: logf}, nil
}

func (j *journal) warn(format string, args ...any) {
	if j.logf != nil {
		j.logf(format, args...)
	}
}

func (j *journal) sweepPath(id string) string {
	return filepath.Join(j.dir, "sweeps", id+".json")
}

func (j *journal) checkpointPath(id string) string {
	return filepath.Join(j.dir, "sweeps", id+".records.ndjson")
}

// writeSweep persists (or rewrites) one sweep's journal entry.
func (j *journal) writeSweep(e journalSweep) {
	if j == nil {
		return
	}
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return
	}
	if err := server.AtomicWrite(j.sweepPath(e.ID), append(data, '\n')); err != nil {
		j.warn("journal: sweep %s: %v", e.ID, err)
	}
}

// writeCheckpoint atomically rewrites a sweep's gathered-record
// checkpoint. The whole file is rewritten each time (gathers are at
// most thousands of rows); atomicity matters more than incrementality
// here, because a torn NDJSON tail would silently drop rows at
// recovery.
func (j *journal) writeCheckpoint(id string, lines []checkpointLine) {
	if j == nil {
		return
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, l := range lines {
		if err := enc.Encode(l); err != nil {
			return
		}
	}
	if err := server.AtomicWrite(j.checkpointPath(id), buf.Bytes()); err != nil {
		j.warn("journal: checkpoint %s: %v", id, err)
	}
}

// loadSweeps returns every journaled sweep, oldest id first.
func (j *journal) loadSweeps() []journalSweep {
	if j == nil {
		return nil
	}
	paths, err := filepath.Glob(filepath.Join(j.dir, "sweeps", "*.json"))
	if err != nil {
		return nil
	}
	sort.Strings(paths)
	var entries []journalSweep
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			j.warn("journal: %s: %v", p, err)
			continue
		}
		var e journalSweep
		if err := json.Unmarshal(data, &e); err != nil || e.ID == "" || e.Request == nil {
			j.warn("journal: %s: unreadable entry, skipping", p)
			continue
		}
		entries = append(entries, e)
	}
	return entries
}

// loadCheckpoint reads a sweep's record checkpoint. A missing file is
// an empty checkpoint; a malformed line ends the read there (everything
// before the tear is kept — AtomicWrite makes this all-or-nothing in
// practice, but recovery must never fail on disk content).
func (j *journal) loadCheckpoint(id string) []checkpointLine {
	if j == nil {
		return nil
	}
	f, err := os.Open(j.checkpointPath(id))
	if err != nil {
		return nil
	}
	defer f.Close()
	var lines []checkpointLine
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var l checkpointLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			j.warn("journal: checkpoint %s: truncated at line %d", id, len(lines))
			break
		}
		lines = append(lines, l)
	}
	return lines
}

// removeSweep forgets one sweep's entry and checkpoint (DELETE).
func (j *journal) removeSweep(id string) {
	if j == nil {
		return
	}
	os.Remove(j.sweepPath(id))
	os.Remove(j.checkpointPath(id))
}

// journalMembership is the persisted shard set. It exists only after a
// runtime membership mutation; while absent, the boot flags rule.
type journalMembership struct {
	Shards  []string  `json:"shards"`
	Updated time.Time `json:"updated"`
}

// writeMembership persists the current shard set.
func (j *journal) writeMembership(names []string) {
	if j == nil {
		return
	}
	data, err := json.MarshalIndent(journalMembership{Shards: names, Updated: time.Now().UTC()}, "", "  ")
	if err != nil {
		return
	}
	if err := server.AtomicWrite(filepath.Join(j.dir, "membership.json"), append(data, '\n')); err != nil {
		j.warn("journal: membership: %v", err)
	}
}

// loadMembership returns the journaled shard set, ok == false when none
// was ever written (or it is unreadable).
func (j *journal) loadMembership() ([]string, bool) {
	if j == nil {
		return nil, false
	}
	data, err := os.ReadFile(filepath.Join(j.dir, "membership.json"))
	if err != nil {
		return nil, false
	}
	var m journalMembership
	if err := json.Unmarshal(data, &m); err != nil || len(m.Shards) == 0 {
		j.warn("journal: membership.json unreadable, using boot flags")
		return nil, false
	}
	return m.Shards, true
}

// saveTrace persists one uploaded trace's raw bytes under its
// content-addressed id.
func (j *journal) saveTrace(id string, data []byte) {
	if j == nil {
		return
	}
	if err := server.AtomicWrite(filepath.Join(j.dir, "traces", id), data); err != nil {
		j.warn("journal: trace %s: %v", id, err)
	}
}

// removeTrace drops an evicted trace's file.
func (j *journal) removeTrace(id string) {
	if j == nil {
		return
	}
	os.Remove(filepath.Join(j.dir, "traces", id))
}

// loadTraces returns persisted trace ids in upload order (file mtime,
// ties broken by name) with their raw bytes.
func (j *journal) loadTraces() (ids []string, data map[string][]byte) {
	if j == nil {
		return nil, nil
	}
	entries, err := os.ReadDir(filepath.Join(j.dir, "traces"))
	if err != nil {
		return nil, nil
	}
	type tr struct {
		id    string
		mtime time.Time
	}
	var trs []tr
	for _, e := range entries {
		if e.IsDir() || !strings.HasPrefix(e.Name(), "tr-") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		trs = append(trs, tr{id: e.Name(), mtime: info.ModTime()})
	}
	sort.Slice(trs, func(a, b int) bool {
		if !trs[a].mtime.Equal(trs[b].mtime) {
			return trs[a].mtime.Before(trs[b].mtime)
		}
		return trs[a].id < trs[b].id
	})
	data = make(map[string][]byte, len(trs))
	for _, t := range trs {
		b, err := os.ReadFile(filepath.Join(j.dir, "traces", t.id))
		if err != nil {
			continue
		}
		ids = append(ids, t.id)
		data[t.id] = b
	}
	return ids, data
}
