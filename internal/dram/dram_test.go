package dram

import (
	"testing"

	"allarm/internal/sim"
)

func TestReadLatency(t *testing.T) {
	c := New(60*sim.Nanosecond, 0)
	if done := c.Read(100); done != 100+60*sim.Nanosecond {
		t.Fatalf("done = %v", done)
	}
}

func TestUnlimitedBandwidthNoQueueing(t *testing.T) {
	c := New(60*sim.Nanosecond, 0)
	a := c.Read(0)
	b := c.Read(0)
	if a != b {
		t.Fatalf("interval 0 still queued: %v vs %v", a, b)
	}
}

func TestServiceIntervalSerializes(t *testing.T) {
	c := New(60*sim.Nanosecond, 4*sim.Nanosecond)
	a := c.Read(0)
	b := c.Read(0)
	if b != a+4*sim.Nanosecond {
		t.Fatalf("second read at %v, want %v", b, a+4*sim.Nanosecond)
	}
	if c.Stats().QueueDelay != 4*sim.Nanosecond {
		t.Fatalf("queue delay = %v", c.Stats().QueueDelay)
	}
}

func TestIdleGapResetsQueue(t *testing.T) {
	c := New(60*sim.Nanosecond, 4*sim.Nanosecond)
	c.Read(0)
	done := c.Read(1000 * sim.Nanosecond)
	if done != 1060*sim.Nanosecond {
		t.Fatalf("post-idle read at %v", done)
	}
}

func TestWritesShareBandwidth(t *testing.T) {
	c := New(60*sim.Nanosecond, 4*sim.Nanosecond)
	c.Write(0)
	done := c.Read(0)
	if done != 64*sim.Nanosecond {
		t.Fatalf("read behind write at %v", done)
	}
	s := c.Stats()
	if s.Reads != 1 || s.Writes != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestResetStats(t *testing.T) {
	c := New(60*sim.Nanosecond, 0)
	c.Read(0)
	c.ResetStats()
	if s := c.Stats(); s.Reads != 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestNegativeParamsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(-1, 0)
}
