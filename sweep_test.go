package allarm_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	allarm "allarm"
)

// tinyConfig is the smallest configuration worth simulating, for sweep
// mechanics tests that need real runs.
func tinyConfig() allarm.Config {
	cfg := allarm.ExperimentConfig()
	cfg.AccessesPerThread = 1_000
	return cfg
}

func TestSweepCombinatorOrder(t *testing.T) {
	cfg := tinyConfig()
	s := allarm.NewSweep(allarm.Job{Config: cfg}).
		CrossBenchmarks("barnes", "x264").
		CrossPolicies(allarm.Baseline, allarm.ALLARM).
		CrossPFSizes(64<<10, 32<<10)
	if s.Len() != 8 {
		t.Fatalf("len = %d, want 8", s.Len())
	}
	// Earlier combinators vary slower: benchmark-major, then policy,
	// then PF size.
	want := []struct {
		bench string
		pol   allarm.Policy
		pf    int
	}{
		{"barnes", allarm.Baseline, 64 << 10},
		{"barnes", allarm.Baseline, 32 << 10},
		{"barnes", allarm.ALLARM, 64 << 10},
		{"barnes", allarm.ALLARM, 32 << 10},
		{"x264", allarm.Baseline, 64 << 10},
		{"x264", allarm.Baseline, 32 << 10},
		{"x264", allarm.ALLARM, 64 << 10},
		{"x264", allarm.ALLARM, 32 << 10},
	}
	for i, w := range want {
		j := s.Jobs[i]
		if j.Benchmark != w.bench || j.Config.Policy != w.pol || j.Config.PFBytes != w.pf {
			t.Fatalf("job %d = %s/%v/%d, want %s/%v/%d",
				i, j.Benchmark, j.Config.Policy, j.Config.PFBytes, w.bench, w.pol, w.pf)
		}
	}
}

func TestSweepDedup(t *testing.T) {
	cfg := tinyConfig()
	s := allarm.NewSweep(allarm.Job{Benchmark: "barnes", Config: cfg})
	s.Add(s.Jobs...) // duplicate everything
	s.Add(allarm.Job{Benchmark: "x264", Config: cfg})
	mp := allarm.DefaultMultiProcess()
	// Same benchmark+config but multi-process mode: not a duplicate.
	s.Add(allarm.Job{Benchmark: "barnes", Config: cfg, MultiProcess: &mp})
	if s.Dedup().Len() != 3 {
		t.Fatalf("dedup len = %d, want 3", s.Len())
	}
	if s.Jobs[0].Benchmark != "barnes" || s.Jobs[1].Benchmark != "x264" || s.Jobs[2].MultiProcess == nil {
		t.Fatalf("dedup changed order: %v", s.Jobs)
	}
}

// TestSweepDeterministicAcrossParallelism is the core contract: the same
// spec produces identical results in spec order at every parallelism.
func TestSweepDeterministicAcrossParallelism(t *testing.T) {
	cfg := tinyConfig()
	spec := func() *allarm.Sweep {
		return allarm.NewSweep(allarm.Job{Config: cfg}).
			CrossBenchmarks("barnes", "ocean-cont", "cholesky").
			CrossPolicies(allarm.Baseline, allarm.ALLARM)
	}
	serial, err := (&allarm.Runner{Parallelism: 1}).Run(context.Background(), spec())
	if err != nil {
		t.Fatal(err)
	}
	levels := []int{2, 8}
	if testing.Short() {
		levels = []int{8}
	}
	for _, par := range levels {
		parallel, err := (&allarm.Runner{Parallelism: par}).Run(context.Background(), spec())
		if err != nil {
			t.Fatal(err)
		}
		if len(parallel) != len(serial) {
			t.Fatalf("parallelism %d: %d results, want %d", par, len(parallel), len(serial))
		}
		for i := range serial {
			a, b := serial[i], parallel[i]
			if a.Job.Benchmark != b.Job.Benchmark || a.Job.Config.Policy != b.Job.Config.Policy {
				t.Fatalf("parallelism %d: result %d out of spec order", par, i)
			}
			if a.Err != nil || b.Err != nil {
				t.Fatalf("parallelism %d: unexpected error %v / %v", par, a.Err, b.Err)
			}
			x, y := a.Result, b.Result
			if x.RuntimeNs != y.RuntimeNs || x.NoCBytes != y.NoCBytes ||
				x.PFEvictions != y.PFEvictions || x.PFAllocs != y.PFAllocs ||
				x.L2Misses != y.L2Misses || x.NoCEnergyPJ != y.NoCEnergyPJ {
				t.Fatalf("parallelism %d: result %d differs from serial run", par, i)
			}
		}
	}
}

// TestSweepErrorIsolation: one failing job must not lose the others.
func TestSweepErrorIsolation(t *testing.T) {
	cfg := tinyConfig()
	s := allarm.NewSweep(
		allarm.Job{Benchmark: "barnes", Config: cfg},
		allarm.Job{Benchmark: "no-such-benchmark", Config: cfg},
		allarm.Job{Benchmark: "x264", Config: cfg},
	)
	results, err := allarm.RunSweep(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[0].Result == nil {
		t.Fatalf("job 0 lost: %+v", results[0])
	}
	if results[1].Err == nil {
		t.Fatal("bad job did not error")
	}
	if results[2].Err != nil || results[2].Result == nil {
		t.Fatalf("job 2 lost: %+v", results[2])
	}
	if got := allarm.FirstError(results); got != results[1].Err {
		t.Fatalf("FirstError = %v, want %v", got, results[1].Err)
	}
}

// TestSweepCancellation: a cancelled context stops the sweep promptly
// and marks unstarted jobs with the context's error.
func TestSweepCancellation(t *testing.T) {
	cfg := tinyConfig()
	s := allarm.NewSweep(allarm.Job{Config: cfg}).
		CrossBenchmarks(allarm.Benchmarks()...)

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the sweep starts
	start := time.Now()
	results, err := (&allarm.Runner{Parallelism: 2}).Run(ctx, s)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled sweep took %v", elapsed)
	}
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("job %d = %+v, want cancelled", i, r)
		}
	}
}

// TestSweepCancelMidRun cancels from the progress callback: every job
// claimed afterwards must be skipped with the context's error.
func TestSweepCancelMidRun(t *testing.T) {
	cfg := tinyConfig()
	s := allarm.NewSweep(allarm.Job{Config: cfg}).
		CrossBenchmarks("barnes", "x264", "cholesky", "dedup")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runner := &allarm.Runner{
		Parallelism: 1,
		Progress: func(done, total int, r allarm.SweepResult) {
			if done == 1 {
				cancel()
			}
		},
	}
	results, err := runner.Run(ctx, s)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if results[0].Err != nil || results[0].Result == nil {
		t.Fatalf("first job should have completed: %+v", results[0])
	}
	for i := 1; i < len(results); i++ {
		if !errors.Is(results[i].Err, context.Canceled) {
			t.Fatalf("job %d = %+v, want cancelled", i, results[i])
		}
	}
}

func TestSweepProgressReporting(t *testing.T) {
	cfg := tinyConfig()
	s := allarm.NewSweep(allarm.Job{Config: cfg}).
		CrossBenchmarks("barnes", "x264", "cholesky")
	var seen []int
	runner := &allarm.Runner{
		Parallelism: 2,
		Progress: func(done, total int, r allarm.SweepResult) {
			if total != 3 {
				t.Errorf("total = %d, want 3", total)
			}
			seen = append(seen, done)
		},
	}
	if _, err := runner.Run(context.Background(), s); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 {
		t.Fatalf("progress calls = %v, want 3 calls", seen)
	}
	for i, d := range seen {
		if d != i+1 {
			t.Fatalf("progress done sequence = %v, want 1,2,3", seen)
		}
	}
}

// TestRunExperimentByteStableAcrossParallelism is the compatibility-shim
// acceptance check: the tables RunExperiment prints are byte-identical
// no matter how many workers execute the underlying sweep (the serial
// pre-sweep runner is the Parallelism=1 case).
func TestRunExperimentByteStableAcrossParallelism(t *testing.T) {
	cfg := tinyConfig()
	ids := []string{"table1", "fig2", "fig3a", "fig4a"}
	if testing.Short() {
		ids = []string{"table1", "fig2"}
	}
	for _, id := range ids {
		var serial, parallel strings.Builder
		if err := allarm.RunExperimentWith(context.Background(), &serial, cfg, id, &allarm.Runner{Parallelism: 1}); err != nil {
			t.Fatalf("%s serial: %v", id, err)
		}
		if err := allarm.RunExperimentWith(context.Background(), &parallel, cfg, id, &allarm.Runner{Parallelism: 8}); err != nil {
			t.Fatalf("%s parallel: %v", id, err)
		}
		if serial.String() != parallel.String() {
			t.Fatalf("%s output differs between parallelism 1 and 8:\n--- serial ---\n%s--- parallel ---\n%s",
				id, serial.String(), parallel.String())
		}
		// And the default shim matches both.
		var shim strings.Builder
		if err := allarm.RunExperiment(&shim, cfg, id); err != nil {
			t.Fatalf("%s shim: %v", id, err)
		}
		if shim.String() != serial.String() {
			t.Fatalf("%s RunExperiment differs from explicit runner output", id)
		}
	}
}

// TestExperimentSweepSpecs sanity-checks the job grids behind each
// figure without running them.
func TestExperimentSweepSpecs(t *testing.T) {
	cfg := tinyConfig()
	nb := len(allarm.Benchmarks())
	nmp := len(allarm.MultiProcessBenchmarks())
	cases := []struct {
		id   string
		want int
	}{
		{"table1", 0},
		{"area", 0},
		{"fig2", nb},
		{"fig3a", 2 * nb},
		{"fig3h", 4 * nb},  // ref + 3 sizes per benchmark
		{"fig4a", 5 * nmp}, // 5 sizes per benchmark; full-size run doubles as ref
		{"fig4f", 6 * nmp}, // ref + 5 sizes per benchmark
	}
	for _, c := range cases {
		s, err := allarm.ExperimentSweep(cfg, c.id)
		if err != nil {
			t.Fatalf("%s: %v", c.id, err)
		}
		if s.Len() != c.want {
			t.Fatalf("%s: %d jobs, want %d", c.id, s.Len(), c.want)
		}
	}
	if _, err := allarm.ExperimentSweep(cfg, "fig99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	// fig4d-f sweeps run the panel policy, with a baseline reference.
	s, _ := allarm.ExperimentSweep(cfg, "fig4d")
	if s.Jobs[0].Config.Policy != allarm.Baseline || s.Jobs[1].Config.Policy != allarm.ALLARM {
		t.Fatal("fig4d spec: wrong policies")
	}
	if s.Jobs[0].MultiProcess == nil {
		t.Fatal("fig4d spec: not multi-process")
	}
	// fig4a-c need no extra reference: the full-size baseline grid point
	// is the reference.
	s, _ = allarm.ExperimentSweep(cfg, "fig4a")
	if s.Jobs[0].Config.Policy != allarm.Baseline || s.Jobs[0].Config.PFBytes != cfg.PFBytes {
		t.Fatal("fig4a spec: first job is not the full-size baseline")
	}
}

func TestRunAllPairsMatchesRunPair(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full benchmark suite twice")
	}
	cfg := tinyConfig()
	pairs, err := allarm.RunAllPairs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != len(allarm.Benchmarks()) {
		t.Fatalf("%d pairs, want %d", len(pairs), len(allarm.Benchmarks()))
	}
	base, opt, err := allarm.RunPair(cfg, pairs[0].Benchmark)
	if err != nil {
		t.Fatal(err)
	}
	if base.RuntimeNs != pairs[0].Base.RuntimeNs || opt.RuntimeNs != pairs[0].Opt.RuntimeNs {
		t.Fatal("RunAllPairs and RunPair disagree on the same benchmark")
	}
	if pairs[0].Base.PolicyUsed != allarm.Baseline || pairs[0].Opt.PolicyUsed != allarm.ALLARM {
		t.Fatal("pair policies mislabelled")
	}
}

// TestMsgPoolRecycleParallelSweep runs concurrent simulations to enforce
// that the message/event free lists are confined to their machine's
// goroutine: each worker owns one machine and one set of pools, so the
// race detector must stay silent while results stay deterministic. The
// CI race job runs this under -race.
func TestMsgPoolRecycleParallelSweep(t *testing.T) {
	cfg := tinyConfig()
	s := allarm.NewSweep(
		allarm.Job{Benchmark: "ocean-cont", Config: cfg},
		allarm.Job{Benchmark: "blackscholes", Config: cfg},
	).CrossPolicies(allarm.Baseline, allarm.ALLARM)

	serial, err := (&allarm.Runner{Parallelism: 1}).Run(context.Background(), s)
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	parallel, err := (&allarm.Runner{Parallelism: 4}).Run(context.Background(), s)
	if err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	for i := range serial {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("job %d failed: %v / %v", i, serial[i].Err, parallel[i].Err)
		}
		if serial[i].Result.RuntimeNs != parallel[i].Result.RuntimeNs {
			t.Errorf("job %d: runtime %v (serial) != %v (parallel)",
				i, serial[i].Result.RuntimeNs, parallel[i].Result.RuntimeNs)
		}
	}
}
