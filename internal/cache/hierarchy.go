package cache

import (
	"fmt"

	"allarm/internal/mem"
)

// AccessOutcome classifies a core access against the private hierarchy.
type AccessOutcome uint8

const (
	// Hit means the access completed in L1 or L2 with no coherence action.
	Hit AccessOutcome = iota
	// UpgradeMiss means a readable copy is present (S or O) but a store
	// needs ownership: issue GetM, no data fill strictly required.
	UpgradeMiss
	// Miss means no usable copy is present: issue GetS or GetM.
	Miss
)

// String implements fmt.Stringer.
func (o AccessOutcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case UpgradeMiss:
		return "upgrade-miss"
	case Miss:
		return "miss"
	default:
		return fmt.Sprintf("AccessOutcome(%d)", uint8(o))
	}
}

// Victim describes a line evicted from the hierarchy that may need a
// coherence action: PutM (dirty writeback) or PutE (clean-exclusive
// notification, the paper's "already optimized" baseline); shared victims
// are dropped silently because Hammer does not track sharers.
type Victim struct {
	Addr      mem.PAddr
	State     State
	Untracked bool
	Version   uint64
}

// HierStats counts hierarchy-level events.
type HierStats struct {
	Accesses  uint64
	L1Hits    uint64
	L2Hits    uint64 // L1 miss, L2 hit (line swapped up)
	Misses    uint64 // missed both levels (includes upgrade misses)
	Upgrades  uint64
	ProbeHits uint64 // coherence probes that found the line
}

// Hierarchy is one node's private cache hierarchy: an L1 data cache backed
// by an exclusive L2 (a line lives in exactly one of the two levels, the
// organisation in Table I of the paper). A single coherence controller
// fronts the pair, so probes and fills see both levels.
type Hierarchy struct {
	l1    *Cache
	l2    *Cache
	stats HierStats

	// victims is the scratch buffer Access and Fill return their victim
	// lists in, reused across calls so the hot path does not allocate.
	victims []Victim
}

// NewHierarchy builds the private hierarchy with the given capacities and
// associativities.
func NewHierarchy(l1Bytes, l1Ways, l2Bytes, l2Ways int) *Hierarchy {
	return &Hierarchy{
		l1: New("L1D", l1Bytes, l1Ways),
		l2: New("L2", l2Bytes, l2Ways),
	}
}

// L1 exposes the L1 cache (read-only use expected: stats, tests).
func (h *Hierarchy) L1() *Cache { return h.l1 }

// L2 exposes the L2 cache (read-only use expected: stats, tests).
func (h *Hierarchy) L2() *Cache { return h.l2 }

// Stats returns a copy of hierarchy statistics.
func (h *Hierarchy) Stats() HierStats { return h.stats }

// AccessResult reports how an access resolved against the hierarchy.
type AccessResult struct {
	Outcome AccessOutcome
	// Level is 1 for an L1 hit, 2 for an L2 hit (including upgrade misses
	// that found the line) and 0 for a full miss. It drives hit latency.
	Level int
	// Victims are lines evicted by an L2→L1 swap that need coherence
	// actions. The slice aliases a scratch buffer that the next Access or
	// Fill call overwrites; consume it before touching the hierarchy
	// again.
	Victims []Victim
}

// Access classifies a load (write=false) or store (write=true) to lineAddr
// and performs all hit-path state updates:
//
//   - L1 hit: LRU update; stores in E silently upgrade to M.
//   - L2 hit: the line is swapped into L1; the L1 victim moves to L2. The
//     swap can evict an L2 victim, returned for coherence handling.
//   - S/O hit on a store: UpgradeMiss (GetM required, line retained).
//   - otherwise: Miss.
//
// On Miss and UpgradeMiss the caller must complete the coherence
// transaction and then call Fill.
func (h *Hierarchy) Access(lineAddr mem.PAddr, write bool) AccessResult {
	lineAddr = mem.LineOf(lineAddr)
	h.stats.Accesses++
	h.victims = h.victims[:0]

	if l := h.l1.Lookup(lineAddr); l != nil {
		out := h.hitPath(l, write)
		h.countHit(out, 1)
		return AccessResult{Outcome: out, Level: 1}
	}
	if l2line := h.l2.Peek(lineAddr); l2line != nil {
		// Exclusive hierarchy: move the line up to L1, demote the L1
		// victim to L2.
		moved, _ := h.l2.Remove(lineAddr)
		h.insertL1(moved)
		l := h.l1.Lookup(lineAddr)
		if l == nil {
			panic("cache: line vanished during L2→L1 swap")
		}
		out := h.hitPath(l, write)
		h.countHit(out, 2)
		return AccessResult{Outcome: out, Level: 2, Victims: h.victims}
	}
	h.stats.Misses++
	return AccessResult{Outcome: Miss}
}

func (h *Hierarchy) countHit(out AccessOutcome, level int) {
	if out == Hit {
		if level == 1 {
			h.stats.L1Hits++
		} else {
			h.stats.L2Hits++
		}
	} else {
		h.stats.Misses++
		h.stats.Upgrades++
	}
}

// hitPath applies store-upgrade rules to a present line.
func (h *Hierarchy) hitPath(l *Line, write bool) AccessOutcome {
	if !write {
		return Hit
	}
	switch l.State {
	case Modified:
		return Hit
	case Exclusive:
		l.State = Modified // silent E→M upgrade
		return Hit
	case Shared, Owned:
		return UpgradeMiss
	default:
		panic("cache: invalid state on hit path")
	}
}

// insertL1 inserts a line into L1, demoting any L1 victim into L2 and
// appending L2 victims that require coherence actions to the scratch
// buffer.
func (h *Hierarchy) insertL1(line Line) {
	if v, evicted := h.l1.Insert(line); evicted {
		if v2, evicted2 := h.l2.Insert(v); evicted2 {
			if v2.State == Shared {
				// Silent drop; Hammer directories do not track sharers.
			} else {
				h.victims = append(h.victims, Victim{
					Addr: v2.Addr, State: v2.State,
					Untracked: v2.Untracked, Version: v2.Version,
				})
			}
		}
	}
}

// Fill completes a miss: the granted line enters L1 with the given state
// and data version. For upgrade grants where the line is still present,
// the state is updated in place. Victims evicted to make room are
// returned; as with Access, the slice aliases a reused scratch buffer.
func (h *Hierarchy) Fill(lineAddr mem.PAddr, st State, untracked bool, version uint64) []Victim {
	lineAddr = mem.LineOf(lineAddr)
	h.victims = h.victims[:0]
	if l := h.l1.Peek(lineAddr); l != nil {
		l.State = st
		l.Untracked = untracked
		l.Version = version
		return nil
	}
	if l := h.l2.Peek(lineAddr); l != nil {
		// Upgrade grant while the line sat in L2: promote to L1.
		moved, _ := h.l2.Remove(lineAddr)
		moved.State = st
		moved.Untracked = untracked
		moved.Version = version
		h.insertL1(moved)
		return h.victims
	}
	h.insertL1(Line{Addr: lineAddr, State: st, Untracked: untracked, Version: version})
	return h.victims
}

// ProbeState reports the current state of lineAddr without side effects.
func (h *Hierarchy) ProbeState(lineAddr mem.PAddr) State {
	if l := h.PeekLine(lineAddr); l != nil {
		return l.State
	}
	return Invalid
}

// PeekLine returns the line's bookkeeping from whichever level holds it,
// or nil, without LRU side effects.
func (h *Hierarchy) PeekLine(lineAddr mem.PAddr) *Line {
	lineAddr = mem.LineOf(lineAddr)
	if l := h.l1.Peek(lineAddr); l != nil {
		return l
	}
	return h.l2.Peek(lineAddr)
}

// Invalidate removes lineAddr from the hierarchy (a coherence
// invalidation), returning the state it held (Invalid if absent) and
// whether the line's data was dirty.
func (h *Hierarchy) Invalidate(lineAddr mem.PAddr) (State, bool) {
	lineAddr = mem.LineOf(lineAddr)
	if l, ok := h.l1.Remove(lineAddr); ok {
		h.l1.noteInvalidation()
		h.stats.ProbeHits++
		return l.State, l.State.Dirty()
	}
	if l, ok := h.l2.Remove(lineAddr); ok {
		h.l2.noteInvalidation()
		h.stats.ProbeHits++
		return l.State, l.State.Dirty()
	}
	return Invalid, false
}

// Downgrade moves lineAddr to the target shared-side state in response to
// a read probe: M→O, E→S, O and S unchanged. It returns the state held
// before the probe (Invalid if absent).
func (h *Hierarchy) Downgrade(lineAddr mem.PAddr) State {
	lineAddr = mem.LineOf(lineAddr)
	l := h.l1.Peek(lineAddr)
	if l == nil {
		l = h.l2.Peek(lineAddr)
	}
	if l == nil {
		return Invalid
	}
	h.stats.ProbeHits++
	prev := l.State
	switch l.State {
	case Modified:
		l.State = Owned
	case Exclusive:
		l.State = Shared
	}
	return prev
}

// SetTracked clears the untracked mark on a line after the home directory
// allocates an entry for it (ALLARM remote-miss discovery). No-op when the
// line is absent.
func (h *Hierarchy) SetTracked(lineAddr mem.PAddr) {
	lineAddr = mem.LineOf(lineAddr)
	if l := h.l1.Peek(lineAddr); l != nil {
		l.Untracked = false
		return
	}
	if l := h.l2.Peek(lineAddr); l != nil {
		l.Untracked = false
	}
}

// ResetStats zeroes hierarchy and per-level counters, keeping contents.
func (h *Hierarchy) ResetStats() {
	h.stats = HierStats{}
	h.l1.ResetStats()
	h.l2.ResetStats()
}

// ForEachValid visits every valid line in both levels.
func (h *Hierarchy) ForEachValid(fn func(Line)) {
	h.l1.ForEachValid(fn)
	h.l2.ForEachValid(fn)
}
