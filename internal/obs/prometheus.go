package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// PrometheusContentType is the Content-Type of the v0.0.4 text
// exposition format served for ?format=prometheus.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WantsPrometheus reports whether a /metrics request asked for
// Prometheus text exposition instead of the default JSON: either an
// explicit ?format=prometheus, or an Accept header naming text/plain
// or an openmetrics type (what prometheus scrapers send). Browsers and
// the existing jq pipelines send neither, so JSON stays the default
// and remains byte-compatible.
func WantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics")
}

// WritePrometheus renders every registered series in the Prometheus
// v0.0.4 text format: one # HELP and # TYPE line per family (at first
// occurrence, in registration order), then the samples. Histograms
// emit cumulative _bucket{le=...} samples, _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	metrics := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()

	headered := make(map[string]bool, len(metrics))
	for _, m := range metrics {
		if !headered[m.name] {
			headered[m.name] = true
			fmt.Fprintf(w, "# HELP %s %s\n", m.name, escapeHelp(m.help))
			fmt.Fprintf(w, "# TYPE %s %s\n", m.name, typeString(m.kind))
		}
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(w, "%s%s %d\n", m.name, labelString(m.labels, "", ""), m.c.Load())
		case kindCounterFunc, kindGauge:
			fmt.Fprintf(w, "%s%s %s\n", m.name, labelString(m.labels, "", ""), formatFloat(m.fn()))
		case kindHistogram:
			writeHistogram(w, m)
		}
	}
}

// writeHistogram emits the cumulative bucket series. _count is derived
// from the same per-bucket loads as the +Inf bucket so the two always
// agree even while other goroutines record concurrently.
func writeHistogram(w io.Writer, m *metric) {
	h := m.h
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		le := formatFloat(float64(b) * h.scale)
		fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, labelString(m.labels, "le", le), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, labelString(m.labels, "le", "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", m.name, labelString(m.labels, "", ""), formatFloat(float64(h.sum.Load())*h.scale))
	fmt.Fprintf(w, "%s_count%s %d\n", m.name, labelString(m.labels, "", ""), cum)
}

func typeString(k metricKind) string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// labelString renders {a="b",...}, appending the extra pair (used for
// le) when extraName is non-empty. Labels are sorted by name so series
// identity is stable regardless of registration argument order.
func labelString(labels []Label, extraName, extraValue string) string {
	if len(labels) == 0 && extraName == "" {
		return ""
	}
	ls := append([]Label(nil), labels...)
	if extraName != "" {
		ls = append(ls, Label{extraName, extraValue})
	}
	sort.SliceStable(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
