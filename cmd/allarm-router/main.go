// Command allarm-router fronts a fleet of allarm-serve shards with the
// same sweep API a single daemon speaks. Jobs are consistent-hashed
// onto shards by the same content key the shards cache under, so
// identical jobs always land where their result is already warm. All
// simulation results live in the shards; with -state-dir the router
// additionally journals every accepted sweep so a crash or SIGKILL
// mid-gather resumes — under the original sweep ids, with byte-identical
// results and zero re-simulations — at the next boot.
//
// Usage:
//
//	allarm-router -shards http://s1:8347,http://s2:8347
//	allarm-router -addr :8350 -shards ... -shard-token fleet-secret
//	allarm-router -auth tokens.json       # client-facing bearer auth
//	allarm-router -state-dir /var/lib/allarm-router   # sweep journal
//	allarm-router -shards-file fleet.txt  # SIGHUP re-reads it
//	allarm-router -health-interval 5s -fail-after 3
//	allarm-router -attempts 4 -retry-backoff 250ms -shard-timeout 30s
//
// A sweep submitted here is expanded exactly as a single daemon would
// expand it, scattered to the owning shards as explicit job lists,
// and gathered back in submission order — every emitter (json, ndjson,
// csv, table) renders byte-identically to a single-node run. Shards
// are health-checked and routed around; a shard lost mid-sweep
// degrades that sweep's jobs to "skipped" rather than failing the
// gather, and a later membership change or readmission re-queues those
// jobs onto their new owner. The fleet's shard set can be changed at
// runtime via POST/DELETE /v1/shards (admin-scoped when -auth is set)
// or by sending SIGHUP to re-read -shards-file. GET /metrics reports
// per-shard request, retry and unhealthy interval counters
// (?format=prometheus adds latency histograms in text exposition).
//
// Observability: every response carries an X-Allarm-Request-Id header,
// forwarded on each shard call so one client request correlates across
// the whole fleet's logs. GET /v1/sweeps/{id}/timeline merges the
// router's lifecycle events (accepted, expanded, assigned, gathered,
// migrated, requeued, done) with each shard's per-job timeline into one
// fleet-wide view; /debug/pprof serves live profiles. Both are
// admin-scoped when -auth is set. -log-level and -log-format select
// slog verbosity and text or JSON encoding.
//
// See the "Fleet serving" and "Fault tolerance" sections of README.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	allarm "allarm"
	"allarm/internal/fleet"
	"allarm/internal/obs"
	"allarm/internal/server"
)

// main only translates run's status into an exit code so run's defers
// execute on every path, including signal-driven shutdown.
func main() {
	os.Exit(run())
}

// readShardsFile parses a shard list file: one URL per line, blank
// lines and #-comments ignored.
func readShardsFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var urls []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		urls = append(urls, line)
	}
	if len(urls) == 0 {
		return nil, fmt.Errorf("%s: no shard URLs", path)
	}
	return urls, nil
}

func run() int {
	var (
		addr         = flag.String("addr", ":8350", "listen address (host:port; port 0 picks one)")
		shards       = flag.String("shards", "", "comma-separated allarm-serve base URLs")
		shardsFile   = flag.String("shards-file", "", "file of shard URLs, one per line (SIGHUP re-reads it)")
		shardToken   = flag.String("shard-token", "", "bearer token the router presents to shards")
		authFile     = flag.String("auth", "", "JSON file of client tokens (bearer auth, rate limits, job quotas; \"admin\": true unlocks /v1/shards)")
		stateDir     = flag.String("state-dir", "", "journal directory: accepted sweeps survive router restarts (empty = in-memory only)")
		replicas     = flag.Int("replicas", 0, "virtual nodes per shard on the hash ring (0 = default)")
		healthIvl    = flag.Duration("health-interval", 0, "shard health probe interval (0 = default 2s)")
		failAfter    = flag.Int("fail-after", 0, "consecutive probe failures before a shard is excluded (0 = default 2)")
		attempts     = flag.Int("attempts", 0, "attempts per shard request before giving up (0 = default 3)")
		backoff      = flag.Duration("retry-backoff", 0, "base backoff between retries, doubled per attempt with full jitter (0 = default 100ms)")
		shardTimeout = flag.Duration("shard-timeout", 0, "per-attempt deadline on every shard call (0 = default 30s)")
		reqTimeout   = flag.Duration("request-timeout", 0, "deprecated alias for -shard-timeout")
		logLevel     = flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
		logFormat    = flag.String("log-format", "text", "log encoding: text or json")
		version      = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("allarm-router", allarm.Version)
		return 0
	}
	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "allarm-router:", err)
		return 1
	}

	var shardList []string
	if *shardsFile != "" {
		var err error
		if shardList, err = readShardsFile(*shardsFile); err != nil {
			fmt.Fprintln(os.Stderr, "allarm-router:", err)
			return 1
		}
	}
	for _, s := range strings.Split(*shards, ",") {
		if s = strings.TrimSpace(s); s != "" {
			shardList = append(shardList, s)
		}
	}
	if len(shardList) == 0 {
		fmt.Fprintln(os.Stderr, "allarm-router: -shards or -shards-file is required (allarm-serve URLs)")
		return 2
	}

	opts := fleet.Options{
		Shards:         shardList,
		ShardToken:     *shardToken,
		Replicas:       *replicas,
		HealthInterval: *healthIvl,
		FailAfter:      *failAfter,
		Attempts:       *attempts,
		RetryBackoff:   *backoff,
		ShardTimeout:   *shardTimeout,
		RequestTimeout: *reqTimeout,
		StateDir:       *stateDir,
		Logger:         logger,
	}
	if *authFile != "" {
		guard, err := server.LoadGuard(*authFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "allarm-router:", err)
			return 1
		}
		opts.Guard = guard
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rt, err := fleet.New(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "allarm-router:", err)
		return 1
	}
	defer rt.Close()

	// SIGHUP re-reads -shards-file and swaps the membership: moved keys
	// re-dispatch, skipped jobs get their new owners, the change is
	// journaled. Without -shards-file there is nothing to reload.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for range hup {
			if *shardsFile == "" {
				logger.Warn("SIGHUP ignored (no -shards-file to reload)")
				continue
			}
			urls, err := readShardsFile(*shardsFile)
			if err != nil {
				logger.Error("reload", "error", err)
				continue
			}
			if err := rt.SetShards(urls); err != nil {
				logger.Error("reload", "error", err)
			}
		}
	}()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "allarm-router:", err)
		return 1
	}
	// The resolved address goes to stdout so scripts starting the router
	// on an ephemeral port (-addr :0) can discover where it listens.
	fmt.Printf("allarm-router: listening on http://%s, %d shard(s)\n", ln.Addr(), len(shardList))

	// ReadHeaderTimeout bounds slow-loris header dribble; IdleTimeout
	// reaps abandoned keep-alive connections. No overall write timeout:
	// /events streams for as long as a sweep runs.
	hs := &http.Server{
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "allarm-router:", err)
		return 1
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of waiting out shutdown

	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer scancel()
	if err := hs.Shutdown(sctx); err != nil {
		fmt.Fprintln(os.Stderr, "allarm-router:", err)
		return 1
	}
	logger.Info("bye")
	return 0
}
