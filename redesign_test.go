package allarm_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"

	allarm "allarm"
)

// sameResult asserts two results carry identical metrics (everything a
// simulation determines; the identifying Benchmark name may differ, e.g.
// live run vs trace replay).
func sameResult(t *testing.T, label string, a, b *allarm.Result) {
	t.Helper()
	type m struct {
		RuntimeNs                       float64
		Accesses, Events                uint64
		PFEvictions, PFAllocs           uint64
		NoCBytes, NoCMessages           uint64
		EvictionMsgs, L2Misses          uint64
		LocalRequests, RemoteRequests   uint64
		LocalProbes, ProbesHidden       uint64
		UntrackedGrants, UncachedGrants uint64
		NoCEnergyPJ, PFEnergyPJ         float64
		DRAMEnergyPJ                    float64
	}
	of := func(r *allarm.Result) m {
		return m{
			r.RuntimeNs, r.Accesses, r.Events, r.PFEvictions, r.PFAllocs,
			r.NoCBytes, r.NoCMessages, r.EvictionMsgs, r.L2Misses,
			r.LocalRequests, r.RemoteRequests, r.LocalProbes, r.ProbesHidden,
			r.UntrackedGrants, r.UncachedGrants,
			r.NoCEnergyPJ, r.PFEnergyPJ, r.DRAMEnergyPJ,
		}
	}
	if of(a) != of(b) {
		t.Fatalf("%s: results differ:\n%+v\n%+v", label, of(a), of(b))
	}
}

// TestRunBenchmarkMatchesWorkloadRun: the RunBenchmark shim and the
// first-class Workload path are the same simulation, bit for bit.
func TestRunBenchmarkMatchesWorkloadRun(t *testing.T) {
	cfg := fastConfig()
	for _, pol := range []allarm.Policy{allarm.Baseline, allarm.ALLARM} {
		cfg.Policy = pol
		shim, err := allarm.RunBenchmark(cfg, "barnes")
		if err != nil {
			t.Fatal(err)
		}
		wl, err := allarm.BenchmarkWorkload("barnes", cfg.Threads, cfg.AccessesPerThread)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := allarm.Run(cfg, wl)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, string(pol), shim, direct)
		if shim.Benchmark != direct.Benchmark {
			t.Fatalf("names differ: %q vs %q", shim.Benchmark, direct.Benchmark)
		}
	}
}

// TestPreRedesignGolden replays the committed BENCH_PR2.json matrix
// cells and asserts the simulated runtimes still match the values
// recorded before this redesign: registry-dispatched "baseline" and
// "allarm" are bit-identical to the pre-registry enum policies.
func TestPreRedesignGolden(t *testing.T) {
	raw, err := os.ReadFile("BENCH_PR2.json")
	if err != nil {
		t.Skipf("no BENCH_PR2.json golden: %v", err)
	}
	var snap struct {
		Seed  uint64 `json:"seed"`
		After struct {
			Runs []struct {
				Name         string  `json:"name"`
				Benchmark    string  `json:"benchmark"`
				Policy       string  `json:"policy"`
				Accesses     int     `json:"accesses_per_thread"`
				SimRuntimeNs float64 `json:"sim_runtime_ns"`
			} `json:"runs"`
		} `json:"after"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.After.Runs) == 0 {
		t.Fatal("golden carries no runs")
	}
	for _, run := range snap.After.Runs {
		if testing.Short() && run.Accesses > 30_000 {
			continue // the large cells take seconds each
		}
		pol, err := allarm.ParsePolicy(run.Policy)
		if err != nil {
			t.Fatal(err)
		}
		cfg := allarm.ExperimentConfig()
		cfg.Seed = snap.Seed
		cfg.Policy = pol
		cfg.AccessesPerThread = run.Accesses
		res, err := allarm.RunBenchmark(cfg, run.Benchmark)
		if err != nil {
			t.Fatalf("%s: %v", run.Name, err)
		}
		if res.RuntimeNs != run.SimRuntimeNs {
			t.Fatalf("%s: simulated runtime %v, golden %v (pre-redesign behaviour changed)",
				run.Name, res.RuntimeNs, run.SimRuntimeNs)
		}
	}
}

// TestTraceRoundTripBitIdentical is the capture → replay acceptance
// check: a synthetic benchmark captured through the public API and
// replayed as a Workload produces results bit-identical to the live run,
// under both policies.
func TestTraceRoundTripBitIdentical(t *testing.T) {
	cfg := fastConfig()
	wl, err := allarm.BenchmarkWorkload("ocean-cont", cfg.Threads, cfg.AccessesPerThread)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := allarm.CaptureTrace(&buf, wl, cfg.Seed); err != nil {
		t.Fatal(err)
	}
	replay, err := allarm.ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if replay.Threads() != wl.Threads() {
		t.Fatalf("replay threads = %d, want %d", replay.Threads(), wl.Threads())
	}
	for _, pol := range []allarm.Policy{allarm.Baseline, allarm.ALLARM} {
		cfg.Policy = pol
		live, err := allarm.Run(cfg, wl)
		if err != nil {
			t.Fatal(err)
		}
		replayed, err := allarm.Run(cfg, replay)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, string(pol), live, replayed)
	}
}

// TestLoadTraceFromFile: the file-path constructor names the workload
// after the file and round-trips through the CLI capture format.
func TestLoadTraceFromFile(t *testing.T) {
	cfg := fastConfig()
	cfg.AccessesPerThread = 500
	wl, err := allarm.BenchmarkWorkload("barnes", cfg.Threads, cfg.AccessesPerThread)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/barnes.trace"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := allarm.CaptureTrace(f, wl, cfg.Seed); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	loaded, err := allarm.LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Name() != "barnes.trace" {
		t.Fatalf("name = %q", loaded.Name())
	}
	res, err := allarm.Run(cfg, loaded)
	if err != nil {
		t.Fatal(err)
	}
	if res.Benchmark != "barnes.trace" || res.Accesses != uint64(cfg.Threads*cfg.AccessesPerThread) {
		t.Fatalf("replay result wrong: %+v", res)
	}
	if _, err := allarm.LoadTrace(t.TempDir() + "/missing.trace"); err == nil {
		t.Fatal("missing trace accepted")
	}
}

// TestALLARMHystScheme: the bundled registry scheme runs correctly (the
// coherence checker stays silent), produces the new uncached grants, and
// is a genuinely distinct point between baseline and ALLARM.
func TestALLARMHystScheme(t *testing.T) {
	cfg := fastConfig()
	results := map[allarm.Policy]*allarm.Result{}
	for _, pol := range []allarm.Policy{allarm.Baseline, allarm.ALLARM, allarm.ALLARMHyst} {
		cfg.Policy = pol
		res, err := allarm.RunBenchmark(cfg, "dedup")
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		results[pol] = res
	}
	hyst := results[allarm.ALLARMHyst]
	if hyst.UncachedGrants == 0 {
		t.Fatal("hysteresis produced no uncached grants")
	}
	if hyst.UntrackedGrants == 0 {
		t.Fatal("hysteresis lost ALLARM's untracked local fills")
	}
	if results[allarm.Baseline].UncachedGrants != 0 || results[allarm.ALLARM].UncachedGrants != 0 {
		t.Fatal("built-in policies made uncached grants")
	}
	if hyst.RuntimeNs == results[allarm.ALLARM].RuntimeNs && hyst.PFAllocs == results[allarm.ALLARM].PFAllocs {
		t.Fatal("hysteresis is indistinguishable from ALLARM")
	}
	if hyst.RuntimeNs == results[allarm.Baseline].RuntimeNs && hyst.PFAllocs == results[allarm.Baseline].PFAllocs {
		t.Fatal("hysteresis is indistinguishable from baseline")
	}
}

// TestPolicyRegistry covers registration and parsing rules.
func TestPolicyRegistry(t *testing.T) {
	if err := allarm.RegisterPolicy("", func(allarm.PolicyContext) allarm.DirectoryPolicy { return nil }); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := allarm.RegisterPolicy("x-nil", nil); err == nil {
		t.Fatal("nil factory accepted")
	}
	if err := allarm.RegisterPolicy("allarm", func(allarm.PolicyContext) allarm.DirectoryPolicy { return nil }); err == nil {
		t.Fatal("built-in name re-registered")
	}

	for _, name := range []string{"baseline", "allarm", "allarm-hyst"} {
		p, err := allarm.ParsePolicy(name)
		if err != nil || p.String() != name {
			t.Fatalf("ParsePolicy(%q) = %v, %v", name, p, err)
		}
	}
	if p, err := allarm.ParsePolicy(""); err != nil || p != allarm.Baseline {
		t.Fatalf("empty policy parse = %v, %v", p, err)
	}
	if _, err := allarm.ParsePolicy("no-such-scheme"); err == nil || !strings.Contains(err.Error(), "allarm-hyst") {
		t.Fatalf("unknown policy error should list registered names, got %v", err)
	}
	if allarm.Policy("").String() != "baseline" {
		t.Fatal("zero Policy must print as baseline")
	}

	names := allarm.RegisteredPolicies()
	want := map[string]bool{"baseline": true, "allarm": true, "allarm-hyst": true}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Fatalf("registry missing built-ins: %v (have %v)", want, names)
	}
}

// countingPolicy proves a user-registered scheme is what the machine
// actually consults.
type countingPolicy struct {
	misses *int
}

func (p countingPolicy) OnMiss(allarm.Miss) allarm.MissAction { *p.misses++; return allarm.Track }
func (p countingPolicy) ProbeLocalOnRemoteMiss(uint64) bool   { return false }

func TestCustomPolicyIsUsed(t *testing.T) {
	misses := 0
	err := allarm.RegisterPolicy("test-counting", func(ctx allarm.PolicyContext) allarm.DirectoryPolicy {
		if ctx.Nodes != 16 || ctx.InRange == nil {
			t.Errorf("bad context: %+v", ctx)
		}
		return countingPolicy{misses: &misses}
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig()
	cfg.AccessesPerThread = 500
	cfg.Policy = "test-counting"
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	base := cfg
	base.Policy = allarm.Baseline
	res, err := allarm.RunBenchmark(cfg, "barnes")
	if err != nil {
		t.Fatal(err)
	}
	if misses == 0 {
		t.Fatal("registered policy never consulted")
	}
	ref, err := allarm.RunBenchmark(base, "barnes")
	if err != nil {
		t.Fatal(err)
	}
	// Track-everything with no probes is exactly the baseline.
	sameResult(t, "counting-vs-baseline", res, ref)
}

// badPolicy returns a fixed (possibly illegal) action for every miss.
type badPolicy struct {
	action allarm.MissAction
	probe  bool
}

func (p badPolicy) OnMiss(allarm.Miss) allarm.MissAction { return p.action }
func (p badPolicy) ProbeLocalOnRemoteMiss(uint64) bool   { return p.probe }

// TestIllegalPolicyDecisionsPanic: protocol-breaking decisions must be
// rejected loudly, not silently corrupt coherence.
func TestIllegalPolicyDecisionsPanic(t *testing.T) {
	register := func(name string, p allarm.DirectoryPolicy) {
		t.Helper()
		if err := allarm.RegisterPolicy(name, func(allarm.PolicyContext) allarm.DirectoryPolicy { return p }); err != nil {
			t.Fatal(err)
		}
	}
	register("test-remote-untracked", badPolicy{action: allarm.GrantUntracked, probe: true})
	register("test-uncached-write", badPolicy{action: allarm.GrantUncached, probe: true})

	for _, name := range []string{"test-remote-untracked", "test-uncached-write"} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: illegal decision did not panic", name)
				}
			}()
			cfg := fastConfig()
			cfg.CheckInvariants = false
			cfg.AccessesPerThread = 500
			cfg.Policy = allarm.Policy(name)
			_, _ = allarm.RunBenchmark(cfg, "dedup")
		})
	}
}

// TestNewWorkloadProgrammatic runs a hand-written generator — the third
// workload kind — under the invariant checker.
func TestNewWorkloadProgrammatic(t *testing.T) {
	const threads, accesses = 4, 2000
	wl, err := allarm.NewWorkload(allarm.WorkloadSpec{
		Name:    "stride-writers",
		Threads: threads,
		Stream: func(thread int, seed uint64) allarm.Stream {
			i := 0
			base := uint64(0x1000_0000 + thread*0x40_0000)
			return streamFunc(func() (allarm.Access, bool) {
				if i >= accesses {
					return allarm.Access{}, false
				}
				a := allarm.Access{
					VAddr: base + uint64(i%512)*64,
					Write: i%3 == 0,
					Think: 2 * allarm.Nanosecond,
				}
				i++
				return a, true
			})
		},
		Pages: func(fn func(page uint64, thread int)) {
			for th := 0; th < threads; th++ {
				base := uint64(0x1000_0000 + th*0x40_0000)
				for off := uint64(0); off < 512*64; off += 4096 {
					fn(base+off, th)
				}
			}
		},
		Key: "stride-writers-v1",
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig()
	cfg.Policy = allarm.ALLARM
	res, err := allarm.Run(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accesses != threads*accesses {
		t.Fatalf("accesses = %d", res.Accesses)
	}
	// Pure thread-local data under ALLARM: all directory service is
	// local and untracked.
	if res.UntrackedGrants == 0 || res.RemoteRequests != 0 {
		t.Fatalf("thread-local workload tracked remotely: %+v", res)
	}

	// Spec validation.
	bad := []allarm.WorkloadSpec{
		{Threads: 1, Stream: wl.Stream},
		{Name: "x", Stream: wl.Stream},
		{Name: "x", Threads: 300, Stream: wl.Stream},
		{Name: "x", Threads: 1},
	}
	for i, spec := range bad {
		if _, err := allarm.NewWorkload(spec); err == nil {
			t.Fatalf("bad spec %d accepted", i)
		}
	}
}

// streamFunc adapts a closure to allarm.Stream.
type streamFunc func() (allarm.Access, bool)

func (f streamFunc) Next() (allarm.Access, bool) { return f() }

// TestRunWorkloadValidation: nil and oversized workloads are rejected.
func TestRunWorkloadValidation(t *testing.T) {
	cfg := fastConfig()
	if _, err := allarm.Run(cfg, nil); err == nil {
		t.Fatal("nil workload accepted")
	}
	wl, err := allarm.NewWorkload(allarm.WorkloadSpec{
		Name: "too-wide", Threads: cfg.Nodes + 1,
		Stream: func(int, uint64) allarm.Stream {
			return streamFunc(func() (allarm.Access, bool) { return allarm.Access{}, false })
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := allarm.Run(cfg, wl); err == nil {
		t.Fatal("workload wider than the machine accepted")
	}
	cfg.Policy = "registered-nowhere"
	if _, err := allarm.RunBenchmark(cfg, "barnes"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestMixedSweep is the acceptance scenario: one spec mixing a preset
// benchmark, a replayed trace and the registered allarm-hyst policy,
// with Dedup and the emitters working across all three.
func TestMixedSweep(t *testing.T) {
	cfg := fastConfig()
	cfg.AccessesPerThread = 1000
	cfg.CheckInvariants = false

	wl, err := allarm.BenchmarkWorkload("ocean-cont", cfg.Threads, cfg.AccessesPerThread)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := allarm.CaptureTrace(&buf, wl, cfg.Seed); err != nil {
		t.Fatal(err)
	}
	replay, err := allarm.ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	hystCfg := cfg
	hystCfg.Policy = allarm.ALLARMHyst
	s := allarm.NewSweep(
		allarm.Job{Benchmark: "barnes", Config: cfg},
		allarm.Job{Workload: replay, Config: cfg},
		allarm.Job{Benchmark: "x264", Config: hystCfg},
	)
	// Duplicates of all three kinds dedup away.
	s.Add(s.Jobs...)
	s.Dedup()
	if s.Len() != 3 {
		t.Fatalf("dedup len = %d, want 3", s.Len())
	}

	results, err := allarm.RunSweep(context.Background(), s)
	if err == nil {
		err = allarm.FirstError(results)
	}
	if err != nil {
		t.Fatal(err)
	}
	if n := results[1].Job.WorkloadName(); n != "trace" {
		t.Fatalf("workload job name = %q", n)
	}
	if results[2].Result.UncachedGrants == 0 {
		t.Fatal("hyst job made no uncached grants")
	}

	var csv strings.Builder
	if err := (allarm.CSVEmitter{}).Emit(&csv, results); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"barnes,baseline", "trace,baseline", "x264,allarm-hyst"} {
		if !strings.Contains(csv.String(), want) {
			t.Fatalf("CSV missing %q:\n%s", want, csv.String())
		}
	}
}

// TestCrossWorkloads: the combinator expands jobs in argument order and
// mixes with CrossPolicies.
func TestCrossWorkloads(t *testing.T) {
	cfg := fastConfig()
	mk := func(name string) allarm.Workload {
		wl, err := allarm.NewWorkload(allarm.WorkloadSpec{
			Name: name, Threads: 2,
			Stream: func(int, uint64) allarm.Stream {
				return streamFunc(func() (allarm.Access, bool) { return allarm.Access{}, false })
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return wl
	}
	s := allarm.NewSweep(allarm.Job{Config: cfg}).
		CrossWorkloads(mk("alpha"), mk("beta")).
		CrossPolicies(allarm.Baseline, allarm.ALLARMHyst)
	if s.Len() != 4 {
		t.Fatalf("len = %d", s.Len())
	}
	want := []struct {
		name string
		pol  allarm.Policy
	}{
		{"alpha", allarm.Baseline}, {"alpha", allarm.ALLARMHyst},
		{"beta", allarm.Baseline}, {"beta", allarm.ALLARMHyst},
	}
	for i, w := range want {
		j := s.Jobs[i]
		if j.WorkloadName() != w.name || j.Config.Policy != w.pol {
			t.Fatalf("job %d = %s/%s, want %s/%s", i, j.WorkloadName(), j.Config.Policy, w.name, w.pol)
		}
	}
}

// TestExperimentVsDefaultsMatchShims: the Vs variants at opt=ALLARM are
// the existing shims, byte for byte (extends the shim acceptance test).
func TestExperimentVsDefaultsMatchShims(t *testing.T) {
	cfg := fastConfig()
	cfg.CheckInvariants = false
	cfg.AccessesPerThread = 1000
	for _, id := range []string{"table1", "fig2"} {
		var shim, vs strings.Builder
		if err := allarm.RunExperiment(&shim, cfg, id); err != nil {
			t.Fatal(err)
		}
		if err := allarm.RunExperimentVs(context.Background(), &vs, cfg, id, allarm.ALLARM, nil); err != nil {
			t.Fatal(err)
		}
		if shim.String() != vs.String() {
			t.Fatalf("%s: Vs output differs from shim", id)
		}
	}
	// And a non-default policy flows through the figure machinery.
	var hyst strings.Builder
	if err := allarm.RunExperimentVs(context.Background(), &hyst, cfg, "fig3a", allarm.ALLARMHyst, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(hyst.String(), "geomean") {
		t.Fatalf("fig3a under allarm-hyst rendered nothing:\n%s", hyst.String())
	}
}

// TestWorkloadKeys: dedup fingerprints distinguish the workload kinds.
func TestWorkloadKeys(t *testing.T) {
	cfg := fastConfig()
	a := allarm.Job{Benchmark: "barnes", Config: cfg}
	wl, err := allarm.BenchmarkWorkload("barnes", cfg.Threads, cfg.AccessesPerThread)
	if err != nil {
		t.Fatal(err)
	}
	b := allarm.Job{Workload: wl, Config: cfg}
	s := allarm.NewSweep(a, b).Dedup()
	// A preset job and its Workload twin are different spec kinds; both
	// stay (callers pick one style per sweep).
	if s.Len() != 2 {
		t.Fatalf("dedup merged distinct job kinds: %d", s.Len())
	}
	if fmt.Sprint(a.WorkloadName()) != "barnes" || b.WorkloadName() != "barnes" {
		t.Fatal("names wrong")
	}
}
