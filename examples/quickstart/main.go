// Quickstart: run one benchmark under both directory policies — as a
// two-job Sweep executed in parallel — and print the paper's headline
// normalised metrics.
package main

import (
	"context"
	"fmt"
	"log"

	allarm "allarm"
)

func main() {
	cfg := allarm.ExperimentConfig()
	cfg.AccessesPerThread = 30_000 // keep the example snappy

	// A Sweep is the declarative spec: seed job × each policy.
	sweep := allarm.NewSweep(allarm.Job{Benchmark: "ocean-cont", Config: cfg}).
		CrossPolicies(allarm.Baseline, allarm.ALLARM)
	results, err := allarm.RunSweep(context.Background(), sweep)
	if err == nil {
		err = allarm.FirstError(results)
	}
	if err != nil {
		log.Fatal(err)
	}
	base, opt := results[0].Result, results[1].Result

	c := allarm.Compare(base, opt)
	fmt.Println("ocean-cont, 16 threads, baseline vs ALLARM")
	fmt.Printf("  speedup                 %.3fx\n", c.Speedup)
	fmt.Printf("  probe-filter evictions  %d -> %d (x%.2f)\n",
		base.PFEvictions, opt.PFEvictions, c.EvictionRatio)
	fmt.Printf("  NoC traffic             %.1f -> %.1f MB (x%.2f)\n",
		float64(base.NoCBytes)/1e6, float64(opt.NoCBytes)/1e6, c.TrafficRatio)
	fmt.Printf("  L2 misses               %d -> %d (x%.2f)\n",
		base.L2Misses, opt.L2Misses, c.L2MissRatio)
	fmt.Printf("  PF dynamic energy       x%.2f\n", c.PFEnergyRatio)
	fmt.Printf("  thread-local fills with no directory state: %d\n",
		opt.UntrackedGrants)
	fmt.Printf("  local probes hidden off the critical path:  %.0f%%\n",
		100*opt.SnoopHiddenFraction())
}
