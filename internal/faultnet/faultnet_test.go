package faultnet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestWindowRulesExactOrdinals: Skip/Count/Every fire on exact match
// ordinals, independent of seed — the determinism tests assert against.
func TestWindowRulesExactOrdinals(t *testing.T) {
	plan := Plan{Rules: []Rule{
		{Name: "burst", Path: "/a", Skip: 2, Count: 3, Status: 503},
		{Name: "flap", Path: "/h", Every: 2, Status: 500},
	}}
	in, err := New(plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	for i := 0; i < 8; i++ {
		d := in.decide("http", "GET", "x", "/a")
		got = append(got, d.status)
	}
	// Skip 2, then a burst of exactly 3, then clean.
	want := []int{0, 0, 503, 503, 503, 0, 0, 0}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("burst pattern %v, want %v", got, want)
	}
	got = got[:0]
	for i := 0; i < 6; i++ {
		d := in.decide("http", "GET", "x", "/h")
		got = append(got, d.status)
	}
	// Every 2: fire on armed matches 1, 3, 5 — a deterministic flap.
	want = []int{500, 0, 500, 0, 500, 0}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("flap pattern %v, want %v", got, want)
	}
}

// TestSeededDeterminism: same plan + seed + arrival order replays the
// identical decision sequence; a different seed diverges.
func TestSeededDeterminism(t *testing.T) {
	plan := Plan{Rules: []Rule{{Name: "p50", P: 0.5, Drop: true}}}
	seq := func(seed int64) string {
		in, err := New(plan, seed)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for i := 0; i < 64; i++ {
			if in.decide("http", "GET", "x", "/").drop {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		return b.String()
	}
	a, b := seq(42), seq(42)
	if a != b {
		t.Errorf("same seed diverged:\n%s\n%s", a, b)
	}
	if c := seq(43); c == a {
		t.Errorf("different seeds produced identical sequences (%s)", a)
	}
	if !strings.Contains(a, "1") || !strings.Contains(a, "0") {
		t.Errorf("p=0.5 sequence degenerate: %s", a)
	}
}

// TestRuleMatchers: scope, method, host and path-prefix selection.
func TestRuleMatchers(t *testing.T) {
	plan := Plan{Rules: []Rule{
		{Name: "post-only", Method: "POST", Status: 500},
		{Name: "conn-only", Scope: "conn", Drop: true},
		{Name: "host", Host: "h1:1", Path: "/v1/", Status: 502},
	}}
	in, err := New(plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d := in.decide("http", "GET", "h2:1", "/x"); d.terminal() {
		t.Errorf("unmatched request faulted: %+v", d)
	}
	if d := in.decide("http", "POST", "h2:1", "/x"); d.status != 500 {
		t.Errorf("method match: %+v", d)
	}
	if d := in.decide("http", "GET", "h1:1", "/v1/sweeps"); d.status != 502 {
		t.Errorf("host+path match: %+v", d)
	}
	if d := in.decide("http", "GET", "h1:1", "/healthz"); d.terminal() {
		t.Errorf("path prefix over-matched: %+v", d)
	}
	if d := in.decide("conn", "", "any", ""); !d.drop {
		t.Errorf("conn scope: %+v", d)
	}
}

// TestRoundTripperFaults: drops become transport errors, statuses are
// synthesized with Retry-After, latency delays, slow bodies meter reads
// — and untargeted requests pass through untouched.
func TestRoundTripperFaults(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "payload")
	}))
	defer backend.Close()

	plan := Plan{Rules: []Rule{
		{Name: "drop", Path: "/drop", Drop: true},
		{Name: "throttle", Path: "/throttle", Status: 429, RetryAfterMs: 1500},
		{Name: "lag", Path: "/lag", LatencyMs: 30},
		{Name: "dribble", Path: "/slow", SlowBodyMs: 10},
	}}
	in, err := New(plan, 7)
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Transport: in.RoundTripper(nil)}

	if _, err := client.Get(backend.URL + "/drop"); err == nil {
		t.Error("drop rule: request succeeded")
	} else if !strings.Contains(err.Error(), "connection reset by rule drop") {
		t.Errorf("drop rule error: %v", err)
	}

	resp, err := client.Get(backend.URL + "/throttle")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("throttle status %d", resp.StatusCode)
	}
	// 1500ms rounds up to the header's whole-second granularity.
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After %q, want 2", ra)
	}

	start := time.Now()
	resp, err = client.Get(backend.URL + "/lag")
	if err != nil {
		t.Fatal(err)
	}
	io.ReadAll(resp.Body)
	resp.Body.Close()
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("latency rule added only %s", d)
	}

	resp, err = client.Get(backend.URL + "/slow")
	if err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "payload" {
		t.Errorf("slow body corrupted payload: %q", body)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Errorf("slow body added only %s", d)
	}

	resp, err = client.Get(backend.URL + "/clean")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || string(body) != "payload" {
		t.Errorf("clean request disturbed: %d %q", resp.StatusCode, body)
	}

	stats := in.Stats()
	for _, rs := range stats {
		if rs.Fired != 1 {
			t.Errorf("rule %s fired %d times, want 1", rs.Name, rs.Fired)
		}
	}
}

// TestHTTPProxyFaults: the reverse proxy forwards cleanly, synthesizes
// statuses, and severs connections on drop rules.
func TestHTTPProxyFaults(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "ok:%s", r.URL.Path)
	}))
	defer backend.Close()
	target, err := url.Parse(backend.URL)
	if err != nil {
		t.Fatal(err)
	}

	plan := Plan{Rules: []Rule{
		{Name: "outage", Path: "/v1/sweeps", Method: "POST", Count: 2, Status: 503},
		{Name: "sever", Path: "/sever", Drop: true},
	}}
	in, err := New(plan, 3)
	if err != nil {
		t.Fatal(err)
	}
	proxy := httptest.NewServer(in.Proxy(target))
	defer proxy.Close()

	// Burst: first two submits 503, third forwarded.
	for i, want := range []int{503, 503, 200} {
		resp, err := http.Post(proxy.URL+"/v1/sweeps", "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("submit %d: status %d, want %d", i, resp.StatusCode, want)
		}
	}

	// Drop: the connection dies without an HTTP answer.
	if resp, err := http.Get(proxy.URL + "/sever"); err == nil {
		resp.Body.Close()
		t.Errorf("severed request answered: %d", resp.StatusCode)
	}

	// Clean paths proxy transparently.
	resp, err := http.Get(proxy.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok:/healthz" {
		t.Errorf("proxied body %q", body)
	}
}

// TestTCPProxyResets: conn-scoped rules refuse connections and reset
// streams mid-flight at exact byte offsets.
func TestTCPProxyResets(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(make([]byte, 64<<10)) // big enough to straddle a reset
	}))
	defer backend.Close()
	backendAddr := strings.TrimPrefix(backend.URL, "http://")

	plan := Plan{Rules: []Rule{
		{Name: "refuse", Scope: "conn", Count: 1, Drop: true},
		{Name: "cut", Scope: "conn", Count: 1, ResetAfterBytes: 100},
	}}
	in, err := New(plan, 5)
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := in.ProxyTCP("127.0.0.1:0", backendAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	base := "http://" + proxy.Addr()

	// Connection 1: refused at accept — the client sees a reset/EOF.
	noKeepAlive := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	if resp, err := noKeepAlive.Get(base + "/"); err == nil {
		resp.Body.Close()
		t.Error("refused connection served a response")
	}

	// Connection 2: cut after 100 bytes — the body read must fail.
	resp, err := noKeepAlive.Get(base + "/")
	if err == nil {
		_, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr == nil {
			t.Error("reset stream delivered a complete body")
		}
	}

	// Connection 3: clean pass-through, full body.
	resp, err = noKeepAlive.Get(base + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil || len(body) != 64<<10 {
		t.Errorf("clean connection: err %v, %d bytes", rerr, len(body))
	}
}

// TestLoadPlan: JSON round-trip and validation.
func TestLoadPlan(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "plan.json")
	plan := Plan{Rules: []Rule{
		{Name: "a", Path: "/x", Count: 2, Status: 503, RetryAfterMs: 1000},
		{Name: "b", Scope: "conn", P: 0.25, Drop: true},
	}}
	data, err := json.Marshal(plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPlan(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rules) != 2 || got.Rules[0].Name != "a" || got.Rules[1].P != 0.25 {
		t.Errorf("plan round-trip: %+v", got)
	}

	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"rules":[{"name":"x","p":2}]}`), 0o644)
	if _, err := LoadPlan(bad); err == nil {
		t.Error("out-of-range p accepted")
	}
	os.WriteFile(bad, []byte(`{"rules":[{"scope":"udp"}]}`), 0o644)
	if _, err := LoadPlan(bad); err == nil {
		t.Error("unknown scope accepted")
	}
}
