package allarm

import (
	"context"
	"fmt"
	"io"
	"sort"

	"allarm/internal/energy"
	"allarm/internal/stats"
)

// Experiment identifiers accepted by RunExperiment and ExperimentSweep
// (one per table/figure of the paper).
var ExperimentIDs = []string{
	"table1",
	"fig2",
	"fig3a", "fig3b", "fig3c", "fig3d", "fig3e", "fig3f", "fig3g", "fig3h",
	"fig4a", "fig4b", "fig4c", "fig4d", "fig4e", "fig4f",
	"area",
}

// PairResults is the per-benchmark baseline/ALLARM pair of a sweep.
type PairResults struct {
	Benchmark string
	Base, Opt *Result
}

// PairsSweep is the spec behind RunAllPairs and Figure 3: every
// benchmark under both policies, baseline first.
func PairsSweep(cfg Config) *Sweep {
	return PairsSweepVs(cfg, ALLARM)
}

// PairsSweepVs is PairsSweep with the optimised policy under evaluation
// made explicit: every benchmark under the baseline and opt, baseline
// first. Any registered policy works (see RegisterPolicy).
func PairsSweepVs(cfg Config, opt Policy) *Sweep {
	return NewSweep(Job{Config: cfg}).
		CrossBenchmarks(Benchmarks()...).
		CrossPolicies(Baseline, opt)
}

// RunAllPairs runs every benchmark under both policies at the given
// configuration, in parallel across the machine's cores.
func RunAllPairs(cfg Config) ([]PairResults, error) {
	results, err := RunSweep(context.Background(), PairsSweep(cfg))
	if err != nil {
		return nil, err
	}
	return pairsOf(results)
}

// pairsOf folds PairsSweep results (benchmark-major, baseline first)
// into per-benchmark pairs, failing on the first job error in spec
// order.
func pairsOf(results []SweepResult) ([]PairResults, error) {
	if err := FirstError(results); err != nil {
		return nil, err
	}
	out := make([]PairResults, 0, len(results)/2)
	for i := 0; i+1 < len(results); i += 2 {
		out = append(out, PairResults{
			Benchmark: results[i].Job.Benchmark,
			Base:      results[i].Result,
			Opt:       results[i+1].Result,
		})
	}
	return out, nil
}

// ExperimentSweep returns the declarative job spec behind one of the
// paper's tables or figures: the exact simulations the experiment needs,
// in the order its renderer consumes them. "table1" and "area" run no
// simulations and return an empty sweep. Unknown ids return an error
// listing the valid ones.
func ExperimentSweep(cfg Config, id string) (*Sweep, error) {
	return ExperimentSweepVs(cfg, id, ALLARM)
}

// ExperimentSweepVs is ExperimentSweep with the optimised policy under
// evaluation made explicit, so a figure's grid can be regenerated for
// any registered policy (allarm-bench -policy). opt == ALLARM reproduces
// the paper exactly.
func ExperimentSweepVs(cfg Config, id string, opt Policy) (*Sweep, error) {
	switch id {
	case "table1", "area":
		return NewSweep(), nil
	case "fig2":
		c := cfg
		c.Policy = Baseline
		return NewSweep(Job{Config: c}).CrossBenchmarks(Benchmarks()...), nil
	case "fig3a", "fig3b", "fig3c", "fig3d", "fig3e", "fig3f", "fig3g":
		return PairsSweepVs(cfg, opt), nil
	case "fig3h":
		// Per benchmark: the full-size baseline reference, then the
		// optimised policy at each Figure 3h probe-filter size.
		s := NewSweep()
		for _, b := range Benchmarks() {
			ref := cfg
			ref.Policy = Baseline
			s.Add(Job{Benchmark: b, Config: ref})
			for _, div := range fig3hSizes {
				c := cfg
				c.Policy = opt
				c.PFBytes = cfg.PFBytes / div
				s.Add(Job{Benchmark: b, Config: c})
			}
		}
		return s, nil
	case "fig4a", "fig4b", "fig4c", "fig4d", "fig4e", "fig4f":
		policy := fig4Policy(id, opt)
		// Per benchmark: the panel's policy at each Figure 4 probe-filter
		// size, normalised to the full-size baseline. For the baseline
		// panels that reference IS the first grid point, so no extra
		// reference job is needed; the ALLARM panels prepend it.
		mp := DefaultMultiProcess()
		s := NewSweep()
		for _, b := range MultiProcessBenchmarks() {
			if policy != Baseline {
				ref := cfg
				ref.Policy = Baseline
				s.Add(Job{Benchmark: b, Config: ref, MultiProcess: &mp})
			}
			for _, div := range fig4Divisors {
				c := cfg
				c.Policy = policy
				c.PFBytes = cfg.PFBytes / div
				s.Add(Job{Benchmark: b, Config: c, MultiProcess: &mp})
			}
		}
		return s, nil
	default:
		ids := make([]string, len(ExperimentIDs))
		copy(ids, ExperimentIDs)
		sort.Strings(ids)
		return nil, fmt.Errorf("allarm: unknown experiment %q (have %v)", id, ids)
	}
}

// RunExperiment regenerates one of the paper's tables or figures at the
// given configuration, writing the series the paper plots to w. It is
// the compatibility shim over the Sweep API: ExperimentSweep(cfg, id)
// executed by a default Runner (all cores) and rendered by the
// experiment's table formatter — output is byte-identical to the
// pre-sweep serial runner, because every simulation is deterministic.
func RunExperiment(w io.Writer, cfg Config, id string) error {
	return RunExperimentWith(context.Background(), w, cfg, id, nil)
}

// RunExperimentWith is RunExperiment with an explicit context and
// Runner (nil means a default all-cores Runner), for callers that want
// cancellation, bounded parallelism or progress observation.
func RunExperimentWith(ctx context.Context, w io.Writer, cfg Config, id string, r *Runner) error {
	return RunExperimentVs(ctx, w, cfg, id, ALLARM, r)
}

// RunExperimentVs is RunExperimentWith with the optimised policy under
// evaluation made explicit: the experiment's grid is built by
// ExperimentSweepVs and rendered with the same normalisations the paper
// uses, so any registered policy can be read off the paper's figures.
func RunExperimentVs(ctx context.Context, w io.Writer, cfg Config, id string, opt Policy, r *Runner) error {
	sweep, err := ExperimentSweepVs(cfg, id, opt)
	if err != nil {
		return err
	}
	if r == nil {
		r = &Runner{}
	}
	results, err := r.Run(ctx, sweep)
	if err != nil {
		return err
	}
	if err := FirstError(results); err != nil {
		return err
	}
	return renderExperiment(w, cfg, id, opt, results)
}

// renderExperiment formats the sweep results of experiment id, which
// must be in ExperimentSweepVs(cfg, id, opt) spec order.
func renderExperiment(w io.Writer, cfg Config, id string, opt Policy, results []SweepResult) error {
	switch id {
	case "table1":
		return renderTable1(w, cfg)
	case "fig2":
		return renderFig2(w, results)
	case "fig3a", "fig3b", "fig3c", "fig3d", "fig3e", "fig3f", "fig3g":
		pairs, err := pairsOf(results)
		if err != nil {
			return err
		}
		return renderFig3(w, pairs, id)
	case "fig3h":
		return renderFig3h(w, cfg, results)
	case "fig4a", "fig4b", "fig4c", "fig4d", "fig4e", "fig4f":
		return renderFig4(w, cfg, id, opt, results)
	case "area":
		return renderArea(w)
	}
	return fmt.Errorf("allarm: unknown experiment %q", id)
}

// renderTable1 prints the simulated-system parameters (Table I), both
// the paper's values (DefaultConfig) and the harness scale actually
// used. It consumes no simulation results.
func renderTable1(w io.Writer, cfg Config) error {
	t := stats.NewTable("Parameter", "Table I", "This run")
	d := DefaultConfig()
	row := func(name, paper, run string) { t.AddRow(name, paper, run) }
	row("Cores", fmt.Sprint(d.Nodes), fmt.Sprint(cfg.Nodes))
	row("Block size", "64 bytes", "64 bytes")
	row("L1 DCache", fmt.Sprintf("%dkB %d-way", d.L1Bytes>>10, d.L1Ways), fmt.Sprintf("%dkB %d-way", cfg.L1Bytes>>10, cfg.L1Ways))
	row("L2 Cache", fmt.Sprintf("%dkB %d-way (exclusive)", d.L2Bytes>>10, d.L2Ways), fmt.Sprintf("%dkB %d-way (exclusive)", cfg.L2Bytes>>10, cfg.L2Ways))
	row("Directory coverage", fmt.Sprintf("%dkB cached data", d.PFBytes>>10), fmt.Sprintf("%dkB cached data", cfg.PFBytes>>10))
	row("Cache/dir latency", fmt.Sprintf("%gns/%gns", d.CacheNs, d.DirNs), fmt.Sprintf("%gns/%gns", cfg.CacheNs, cfg.DirNs))
	row("Memory", fmt.Sprintf("%d x %dMB, %gns", d.Nodes, d.MemMiBPerNode, d.DRAMNs), fmt.Sprintf("%d x %dMB, %gns", cfg.Nodes, cfg.MemMiBPerNode, cfg.DRAMNs))
	row("Topology", fmt.Sprintf("%dx%d mesh", d.MeshW, d.MeshH), fmt.Sprintf("%dx%d mesh", cfg.MeshW, cfg.MeshH))
	row("Flit size", fmt.Sprintf("%d bytes", d.FlitBytes), fmt.Sprintf("%d bytes", cfg.FlitBytes))
	row("Control/Data msg", fmt.Sprintf("%d/%d bytes", d.CtrlMsgBytes, d.DataMsgBytes), fmt.Sprintf("%d/%d bytes", cfg.CtrlMsgBytes, cfg.DataMsgBytes))
	row("Link BW/latency", fmt.Sprintf("%g GB/s, %gns", d.LinkBytesPerNs, d.LinkNs), fmt.Sprintf("%g GB/s, %gns", cfg.LinkBytesPerNs, cfg.LinkNs))
	_, err := fmt.Fprint(w, t.String())
	return err
}

// renderFig2 prints the local/remote directory-request split per
// benchmark from one baseline run each.
func renderFig2(w io.Writer, results []SweepResult) error {
	t := stats.NewTable("Benchmark", "Local", "Remote")
	for _, r := range results {
		lf := r.Result.LocalFraction()
		t.AddRow(r.Job.Benchmark, fmt.Sprintf("%.3f", lf), fmt.Sprintf("%.3f", 1-lf))
	}
	_, err := fmt.Fprint(w, t.String())
	return err
}

// renderFig3 prints one of the Figure 3 per-benchmark bar charts.
func renderFig3(w io.Writer, pairs []PairResults, id string) error {
	switch id {
	case "fig3a", "fig3b", "fig3c", "fig3e":
		name := map[string]string{
			"fig3a": "Speedup", "fig3b": "Norm. PF evictions",
			"fig3c": "Norm. NoC traffic", "fig3e": "Norm. L2 misses",
		}[id]
		t := stats.NewTable("Benchmark", name)
		var vals []float64
		for _, p := range pairs {
			c := Compare(p.Base, p.Opt)
			v := map[string]float64{
				"fig3a": c.Speedup, "fig3b": c.EvictionRatio,
				"fig3c": c.TrafficRatio, "fig3e": c.L2MissRatio,
			}[id]
			// A benchmark whose ALLARM run has zero evictions plots as 0.
			vals = append(vals, v)
			t.AddRow(p.Benchmark, fmt.Sprintf("%.3f", v))
		}
		t.AddRow("geomean", fmt.Sprintf("%.3f", stats.GeomeanNonZero(vals)))
		_, err := fmt.Fprint(w, t.String())
		return err
	case "fig3d":
		t := stats.NewTable("Benchmark", "Msgs/eviction (base)", "Msgs/eviction (allarm)")
		for _, p := range pairs {
			t.AddRow(p.Benchmark,
				fmt.Sprintf("%.1f", p.Base.MessagesPerEviction()),
				fmt.Sprintf("%.1f", p.Opt.MessagesPerEviction()))
		}
		_, err := fmt.Fprint(w, t.String())
		return err
	case "fig3f":
		t := stats.NewTable("Benchmark", "NoC energy", "PF energy")
		var noc, pf []float64
		for _, p := range pairs {
			c := Compare(p.Base, p.Opt)
			noc = append(noc, c.NoCEnergyRatio)
			pf = append(pf, c.PFEnergyRatio)
			t.AddRow(p.Benchmark, fmt.Sprintf("%.3f", c.NoCEnergyRatio), fmt.Sprintf("%.3f", c.PFEnergyRatio))
		}
		t.AddRow("geomean", fmt.Sprintf("%.3f", stats.Geomean(noc)), fmt.Sprintf("%.3f", stats.Geomean(pf)))
		_, err := fmt.Fprint(w, t.String())
		return err
	case "fig3g":
		t := stats.NewTable("Benchmark", "Fraction snoop off critical path")
		var vals []float64
		for _, p := range pairs {
			f := p.Opt.SnoopHiddenFraction()
			vals = append(vals, f)
			t.AddRow(p.Benchmark, fmt.Sprintf("%.3f", f))
		}
		t.AddRow("mean", fmt.Sprintf("%.3f", stats.Mean(vals)))
		_, err := fmt.Fprint(w, t.String())
		return err
	}
	return fmt.Errorf("allarm: bad fig3 id %q", id)
}

// fig3hSizes are the probe-filter coverages of Figure 3h, expressed as
// fractions of the configured size (the paper: 512/256/128 kB).
var fig3hSizes = []int{1, 2, 4}

// renderFig3h prints speedup (vs the full-size baseline) per benchmark
// for shrinking probe filters under ALLARM. Results are benchmark-major:
// the reference run, then one ALLARM run per size.
func renderFig3h(w io.Writer, cfg Config, results []SweepResult) error {
	header := []string{"Benchmark"}
	for _, div := range fig3hSizes {
		header = append(header, fmt.Sprintf("%dkB", cfg.PFBytes>>10/div))
	}
	t := stats.NewTable(header...)
	stride := 1 + len(fig3hSizes)
	for i := 0; i+stride-1 < len(results); i += stride {
		ref := results[i].Result
		row := []string{results[i].Job.Benchmark}
		for k := 1; k < stride; k++ {
			row = append(row, fmt.Sprintf("%.3f", ref.RuntimeNs/results[i+k].Result.RuntimeNs))
		}
		t.AddRow(row...)
	}
	_, err := fmt.Fprint(w, t.String())
	return err
}

// fig4Divisors shrink the probe filter for the multi-process experiment
// (the paper: 512, 256, 128, 64, 32 kB).
var fig4Divisors = []int{1, 2, 4, 8, 16}

// fig4Policy returns the directory policy of a Figure 4 panel: the
// baseline for panels a-c, the optimised policy for panels d-f.
func fig4Policy(id string, opt Policy) Policy {
	if id == "fig4d" || id == "fig4e" || id == "fig4f" {
		return opt
	}
	return Baseline
}

// renderFig4 prints one multi-process panel: speedup / normalised
// evictions / normalised traffic versus probe-filter size, for the
// baseline (fig4a-c) or ALLARM (fig4d-f), normalised to the full-size
// baseline. Results are benchmark-major, mirroring ExperimentSweep: for
// ALLARM panels the baseline reference run leads each group; for
// baseline panels the first grid point is the reference.
func renderFig4(w io.Writer, cfg Config, id string, opt Policy, results []SweepResult) error {
	metric := map[string]string{
		"fig4a": "speedup", "fig4b": "evictions", "fig4c": "traffic",
		"fig4d": "speedup", "fig4e": "evictions", "fig4f": "traffic",
	}[id]

	header := []string{"Benchmark"}
	for _, div := range fig4Divisors {
		header = append(header, fmt.Sprintf("%dkB", cfg.PFBytes>>10/div))
	}
	t := stats.NewTable(header...)
	lead := 0 // extra reference job ahead of each group's grid points
	if fig4Policy(id, opt) != Baseline {
		lead = 1
	}
	stride := lead + len(fig4Divisors)
	for i := 0; i+stride-1 < len(results); i += stride {
		ref := results[i].Result
		row := []string{results[i].Job.Benchmark}
		for k := lead; k < stride; k++ {
			res := results[i+k].Result
			var v float64
			switch metric {
			case "speedup":
				v = ref.RuntimeNs / res.RuntimeNs
			case "evictions":
				v = stats.SafeDiv(float64(res.PFEvictions), float64(ref.PFEvictions), 0)
			case "traffic":
				v = stats.SafeDiv(float64(res.NoCBytes), float64(ref.NoCBytes), 0)
			}
			row = append(row, fmt.Sprintf("%.3f", v))
		}
		t.AddRow(row...)
	}
	_, err := fmt.Fprint(w, t.String())
	return err
}

// renderArea prints the probe-filter area table (§III-B), paper versus
// the calibrated power-law model.
func renderArea(w io.Writer) error {
	t := stats.NewTable("PF Configuration", "Paper (mm2)", "Model (mm2)")
	for _, kb := range []int{512, 256, 128, 64, 32} {
		bytes := kb << 10
		t.AddRow(fmt.Sprintf("%dkB", kb),
			fmt.Sprintf("%.2f", energy.PaperPFAreaMM2(bytes)),
			fmt.Sprintf("%.2f", energy.PFAreaMM2(bytes)))
	}
	_, err := fmt.Fprint(w, t.String())
	return err
}
