package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	allarm "allarm"
)

// diskStore is the persistent tier of the result cache: one file per
// simulation result, content-addressed by Job.Key (the same
// golden-tested fingerprint the in-memory LRU and Sweep.Dedup use), so
// results survive daemon restarts and can be shared between daemons
// pointed at the same directory.
//
// Layout: <dir>/<sha256(key)>.json. Each file is a single diskEntry
// JSON object on one line — the same one-object-per-line convention as
// the drain checkpoints' NDJSON, so `jq` and log pipelines can process
// a whole store with `cat dir/*.json`. The entry embeds the full
// (un-hashed) key and is verified on read: a hash collision or a
// foreign file can never serve the wrong simulation.
//
// Writes go through a temp file + rename, so a crash (SIGKILL) midway
// leaves either the old content or none — never a torn entry. Entries
// are immutable once written (simulations are deterministic), which is
// what makes the store safe to share read-write between a draining old
// daemon and its restarted successor.
type diskStore struct {
	dir string
	// entries tracks the file count (seeded at open, bumped on new
	// Puts) so /metrics scrapes don't pay a directory scan on an
	// unbounded store.
	entries atomic.Int64
}

// diskEntry is the on-disk representation of one cached result. The
// Result keeps only its exported metrics — the raw per-node statistics
// (Result.Raw) do not survive the round-trip — which is exactly what
// the emitters consume, so served bytes stay identical to a fresh run.
type diskEntry struct {
	Key     string         `json:"key"`
	SavedAt time.Time      `json:"saved_at"`
	Result  *allarm.Result `json:"result"`
}

// newDiskStore opens (creating if needed) a result store rooted at dir.
func newDiskStore(dir string) (*diskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("result store: %w", err)
	}
	d := &diskStore{dir: dir}
	names, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, fmt.Errorf("result store: %w", err)
	}
	d.entries.Store(int64(len(names)))
	return d, nil
}

// path maps a job key to its entry file. Keys are arbitrary strings
// (they embed %+v-rendered configs), so the filename is the key's
// SHA-256; the key itself is stored inside the entry and checked on Get.
func (d *diskStore) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(d.dir, hex.EncodeToString(sum[:])+".json")
}

// Get returns the stored result for key, or false when the entry is
// absent, unreadable or fails key verification (corrupt entries are
// treated as misses, never as errors: the simulator can always
// regenerate them).
func (d *diskStore) Get(key string) (*allarm.Result, bool) {
	data, err := os.ReadFile(d.path(key))
	if err != nil {
		return nil, false
	}
	var e diskEntry
	if err := json.Unmarshal(data, &e); err != nil || e.Key != key || e.Result == nil {
		return nil, false
	}
	return e.Result, true
}

// Put persists res under key, atomically (temp file + rename).
func (d *diskStore) Put(key string, res *allarm.Result) error {
	data, err := json.Marshal(diskEntry{Key: key, SavedAt: time.Now().UTC(), Result: res})
	if err != nil {
		return err
	}
	data = append(data, '\n')
	path := d.path(key)
	_, statErr := os.Stat(path)
	if err := atomicWrite(path, data); err != nil {
		return err
	}
	if os.IsNotExist(statErr) {
		d.entries.Add(1)
	}
	return nil
}

// Len reports the number of stored entries (metrics; the store itself
// is unbounded — retention is the operator's via the content-addressed
// filenames). It is an O(1) counter, approximate only if another
// process writes the directory concurrently.
func (d *diskStore) Len() int {
	return int(d.entries.Load())
}

// atomicWrite writes data to path via a same-directory temp file and
// rename, so concurrent readers (and crash recovery) only ever see a
// complete file.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}
