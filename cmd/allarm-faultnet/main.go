// Command allarm-faultnet stands a deterministic chaos proxy between
// real allarm processes — typically between allarm-router and its
// allarm-serve shards — applying a declarative, seeded fault plan
// (internal/faultnet) to the traffic flowing through it. The same plan
// JSON drives the in-process harness the fleet tests use, so a failure
// found in CI chaos replays verbatim as a unit test, and vice versa.
//
// Usage:
//
//	allarm-faultnet -listen :9347 -target http://127.0.0.1:8347 -plan plan.json -seed 42
//	allarm-faultnet -listen :9347 -target 127.0.0.1:8347 -tcp -plan plan.json -seed 42
//
// The default mode is an HTTP reverse proxy: Status rules synthesize
// 5xx/429 answers (with Retry-After), Drop rules sever the client's
// connection without an HTTP answer, latency and slow-body rules shape
// forwarded traffic, and SSE streams flush through unbuffered. With
// -tcp the proxy works at the connection level instead: conn-scoped
// rules refuse, delay and RST-reset raw streams, below anything HTTP
// retries can see coming.
//
// A fixed -seed replays the identical fault sequence whenever traffic
// arrives in the same order. On shutdown the per-rule matched/fired
// counters go to stderr, so a "passed" chaos run can be audited for
// whether its faults actually fired.
//
// An example plan:
//
//	{"rules": [
//	  {"name": "outage", "method": "POST", "path": "/v1/sweeps", "status": 503, "count": 2},
//	  {"name": "throttle", "status": 429, "retry_after_ms": 1000, "p": 0.1},
//	  {"name": "jitter", "latency_ms": 5, "jitter_ms": 20, "p": 0.5}
//	]}
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"syscall"
	"time"

	allarm "allarm"
	"allarm/internal/faultnet"
	"allarm/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		listen    = flag.String("listen", ":9347", "proxy listen address (host:port; port 0 picks one)")
		target    = flag.String("target", "", "upstream: a base URL (HTTP mode) or host:port (-tcp mode)")
		planP     = flag.String("plan", "", "JSON fault plan (required; empty rules = transparent proxy)")
		seed      = flag.Int64("seed", 1, "RNG seed: same plan + seed + arrival order = same faults")
		tcp       = flag.Bool("tcp", false, "proxy raw TCP instead of HTTP (uses conn-scoped rules)")
		logLevel  = flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
		logFormat = flag.String("log-format", "text", "log encoding: text or json")
		version   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("allarm-faultnet", allarm.Version)
		return 0
	}
	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "allarm-faultnet:", err)
		return 1
	}
	if *target == "" || *planP == "" {
		logger.Error("-target and -plan are required")
		return 2
	}
	plan, err := faultnet.LoadPlan(*planP)
	if err != nil {
		logger.Error("loading plan", "error", err)
		return 1
	}
	inj, err := faultnet.New(plan, *seed)
	if err != nil {
		logger.Error("building injector", "error", err)
		return 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// The stats audit runs on every exit path: a chaos run whose rules
	// never fired is a green light that tested nothing.
	defer func() {
		enc := json.NewEncoder(os.Stderr)
		enc.SetIndent("", "  ")
		enc.Encode(inj.Stats())
	}()

	if *tcp {
		p, err := inj.ProxyTCP(*listen, *target)
		if err != nil {
			logger.Error("tcp proxy", "error", err)
			return 1
		}
		defer p.Close()
		fmt.Printf("allarm-faultnet: tcp %s -> %s (%d rules, seed %d)\n", p.Addr(), *target, len(plan.Rules), *seed)
		<-ctx.Done()
		return 0
	}

	tu, err := url.Parse(*target)
	if err != nil || tu.Scheme == "" || tu.Host == "" {
		logger.Error("-target must be a base URL in HTTP mode", "got", *target)
		return 2
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		logger.Error("listen", "error", err)
		return 1
	}
	// Resolved address to stdout, same contract as the daemons: scripts
	// use -listen :0 and scrape the port.
	fmt.Printf("allarm-faultnet: http %s -> %s (%d rules, seed %d)\n", ln.Addr(), *target, len(plan.Rules), *seed)
	hs := &http.Server{
		Handler:           inj.Proxy(tu),
		ReadHeaderTimeout: 10 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	select {
	case err := <-serveErr:
		logger.Error("serve", "error", err)
		return 1
	case <-ctx.Done():
	}
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	hs.Shutdown(sctx)
	return 0
}
