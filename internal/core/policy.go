package core

import (
	"fmt"
	"sort"

	"allarm/internal/mem"
)

// Policy selects the probe-filter allocation policy of a directory.
type Policy uint8

const (
	// Baseline allocates a probe-filter entry on any miss, local or
	// remote — the conventional sparse directory, including the
	// notify-on-clean-exclusive-eviction optimisation (PutE).
	Baseline Policy = iota
	// ALLARM allocates only on a miss from a *remote* affinity domain
	// (ALLocAte on Remote Miss). Local misses are served from DRAM with
	// no tracking state; remote misses additionally probe the home's
	// local core, in parallel with DRAM, to discover untracked copies.
	ALLARM
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case Baseline:
		return "baseline"
	case ALLARM:
		return "allarm"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// MissAction is an allocation policy's decision for one probe-filter
// miss.
type MissAction uint8

const (
	// Track installs a probe-filter entry for the line (the conventional
	// sparse-directory behaviour; always legal).
	Track MissAction = iota
	// GrantUntracked serves the miss from DRAM with no entry; the
	// requester caches the line marked untracked. Only legal for local
	// requesters: untracked copies are discoverable solely by the home's
	// PrbLocal query of its own core.
	GrantUntracked
	// GrantUncached serves the miss from DRAM (or a forwarding local
	// copy) with no entry and no fill: the requester consumes the data
	// without caching the line, so no state survives anywhere. Only
	// legal for read misses. Deferred-allocation schemes use it to make
	// a line prove its sharing before spending an entry on it.
	GrantUncached
)

// String implements fmt.Stringer.
func (a MissAction) String() string {
	switch a {
	case Track:
		return "track"
	case GrantUntracked:
		return "grant-untracked"
	case GrantUncached:
		return "grant-uncached"
	default:
		return fmt.Sprintf("MissAction(%d)", uint8(a))
	}
}

// MissInfo describes one demand request that missed the probe filter,
// for the allocation policy's decision.
type MissInfo struct {
	// Addr is the line-aligned physical address.
	Addr mem.PAddr
	// Requester and Home are the requesting and home nodes.
	Requester, Home mem.NodeID
	// Local reports whether the requester is in the home's affinity
	// domain (Requester == Home).
	Local bool
	// Write reports whether the request wants ownership (GetM).
	Write bool
}

// AllocPolicy decides how a directory controller handles probe-filter
// misses — the axis the paper explores (allocate-on-any-miss versus
// allocate-on-remote-miss, §II). One instance serves one directory and
// may keep per-directory state (it is consulted on that directory's
// event goroutine only); it is consulted exactly once per transaction
// that misses, so stateful policies are not skewed by retries.
type AllocPolicy interface {
	// Name identifies the policy (stats, error messages).
	Name() string
	// OnMiss picks the action for a miss. Returning GrantUntracked for a
	// remote requester, or GrantUncached for a write, is a protocol
	// violation and panics in the directory.
	OnMiss(m MissInfo) MissAction
	// ProbeLocalOnRemoteMiss reports whether a remote miss to addr must
	// query the home's own core (PrbLocal) for an untracked copy, in
	// parallel with the DRAM access. Any policy that may ever leave addr
	// untracked at the home core must return true, or those copies
	// become undiscoverable.
	ProbeLocalOnRemoteMiss(addr mem.PAddr) bool
}

// NewAllocPolicy returns the built-in policy implementation for the
// legacy Policy enum (the fallback used when no explicit AllocPolicy is
// configured).
func NewAllocPolicy(p Policy, ranges *RangeSet) AllocPolicy {
	if p == ALLARM {
		return &ALLARMAlloc{Ranges: ranges}
	}
	return BaselineAlloc{}
}

// BaselineAlloc is the conventional sparse directory: every miss
// allocates, no local probes are needed.
type BaselineAlloc struct{}

// Name implements AllocPolicy.
func (BaselineAlloc) Name() string { return "baseline" }

// OnMiss implements AllocPolicy.
func (BaselineAlloc) OnMiss(MissInfo) MissAction { return Track }

// ProbeLocalOnRemoteMiss implements AllocPolicy.
func (BaselineAlloc) ProbeLocalOnRemoteMiss(mem.PAddr) bool { return false }

// ALLARMAlloc is the paper's contribution: local misses within the
// enabled ranges are served untracked; remote misses allocate and probe
// the home's core for untracked copies.
type ALLARMAlloc struct {
	// Ranges restricts the policy to physical ranges (nil = everywhere).
	Ranges *RangeSet
}

// Name implements AllocPolicy.
func (*ALLARMAlloc) Name() string { return "allarm" }

// OnMiss implements AllocPolicy.
func (p *ALLARMAlloc) OnMiss(m MissInfo) MissAction {
	if m.Local && p.Ranges.Enabled(m.Addr) {
		return GrantUntracked
	}
	return Track
}

// ProbeLocalOnRemoteMiss implements AllocPolicy.
func (p *ALLARMAlloc) ProbeLocalOnRemoteMiss(addr mem.PAddr) bool {
	return p.Ranges.Enabled(addr)
}

// AddrRange is a half-open physical address range [Start, End).
type AddrRange struct {
	Start, End mem.PAddr
}

// Contains reports whether a lies in the range.
func (r AddrRange) Contains(a mem.PAddr) bool { return a >= r.Start && a < r.End }

// RangeSet models the paper's boot-time range registers (§II-C): MTRR-like
// registers on each directory controller that restrict ALLARM to selected
// physical ranges. An empty RangeSet enables ALLARM everywhere (the
// default configuration used in the evaluation).
//
// Ranges are normalised (sorted, merged) at construction so Enabled is a
// binary search.
type RangeSet struct {
	ranges []AddrRange
}

// NewRangeSet builds a normalised range set. Ranges with Start >= End are
// rejected with a descriptive error.
func NewRangeSet(ranges ...AddrRange) (*RangeSet, error) {
	rs := make([]AddrRange, 0, len(ranges))
	for _, r := range ranges {
		if r.Start >= r.End {
			return nil, fmt.Errorf("core: empty or inverted range [%#x,%#x)", uint64(r.Start), uint64(r.End))
		}
		rs = append(rs, r)
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].Start < rs[j].Start })
	merged := rs[:0]
	for _, r := range rs {
		if n := len(merged); n > 0 && r.Start <= merged[n-1].End {
			if r.End > merged[n-1].End {
				merged[n-1].End = r.End
			}
			continue
		}
		merged = append(merged, r)
	}
	return &RangeSet{ranges: merged}, nil
}

// Enabled reports whether ALLARM applies to a. A nil or empty set enables
// every address.
func (s *RangeSet) Enabled(a mem.PAddr) bool {
	if s == nil || len(s.ranges) == 0 {
		return true
	}
	i := sort.Search(len(s.ranges), func(i int) bool { return s.ranges[i].End > a })
	return i < len(s.ranges) && s.ranges[i].Contains(a)
}

// Len returns the number of normalised ranges.
func (s *RangeSet) Len() int {
	if s == nil {
		return 0
	}
	return len(s.ranges)
}
