package server

import (
	"context"
	"encoding/json"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	allarm "allarm"
	"allarm/internal/obs"
)

// timelineOf fetches a sweep's timeline view.
func timelineOf(t *testing.T, base, id string, header ...string) obs.TimelineView {
	t.Helper()
	resp, body := get(t, base+"/v1/sweeps/"+id+"/timeline", header...)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("timeline: %d: %s", resp.StatusCode, body)
	}
	var tv obs.TimelineView
	if err := json.Unmarshal(body, &tv); err != nil {
		t.Fatal(err)
	}
	return tv
}

// firstEvent returns the index of the first event with this name, or -1.
func firstEvent(events []obs.TimelineEvent, name string) int {
	for i, e := range events {
		if e.Event == name {
			return i
		}
	}
	return -1
}

// TestTimelineLifecycle pins the per-sweep timeline through the
// preemption scenario: with one worker and checkpointing on, a long job
// checkpoints, yields its slot to a short job, and finishes — and its
// timeline records accepted, expanded, started, checkpointed, preempted,
// finished and done in that order, every event stamped with the sweep's
// correlation id.
func TestTimelineLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulations")
	}
	dir := t.TempDir()
	_, base := newTestServer(t, Options{
		Workers: 1, CacheDir: dir, CheckpointInterval: 2048,
	})
	long := submit(t, base, ckptSweepRequest(40_000))
	waitJob(t, base, long.ID, 0, JobRunning)
	short := submit(t, base, SweepRequest{
		Benchmarks: []string{"barnes"},
		Policies:   []string{"baseline"},
		Config:     &ConfigOverrides{Threads: 2, AccessesPerThread: 200},
	})
	waitDone(t, base, short.ID)
	waitDone(t, base, long.ID)

	tv := timelineOf(t, base, long.ID)
	if tv.ID != long.ID {
		t.Fatalf("timeline id = %q, want %q", tv.ID, long.ID)
	}
	order := []string{"accepted", "expanded", "started", "checkpointed", "preempted", "finished", "done"}
	last := -1
	for _, name := range order {
		i := firstEvent(tv.Events, name)
		if i < 0 {
			t.Fatalf("timeline missing %q event: %+v", name, tv.Events)
		}
		if i < last {
			t.Errorf("%q event out of order (index %d after %d): %+v", name, i, last, tv.Events)
		}
		last = i
	}
	reqID := tv.Events[0].RequestID
	if reqID == "" {
		t.Fatal("timeline events carry no request id")
	}
	for _, e := range tv.Events {
		if e.RequestID != reqID {
			t.Errorf("event %q request id %q != sweep's %q", e.Event, e.RequestID, reqID)
		}
		if e.Time.IsZero() {
			t.Errorf("event %q has a zero timestamp", e.Event)
		}
	}
}

// TestTimelineResumeAfterKill: a recovered sweep's timeline on the
// successor daemon records the recovery and the checkpoint resume
// before the job finishes.
func TestTimelineResumeAfterKill(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulations")
	}
	dir := t.TempDir()
	s1, base1 := newTestServer(t, Options{
		Workers: 1, CacheDir: dir, CheckpointInterval: 4096,
	})
	sr := submit(t, base1, ckptSweepRequest(30_000))
	ckptDir := filepath.Join(dir, "jobckpts")
	deadline := time.Now().Add(30 * time.Second)
	for {
		if names, _ := filepath.Glob(filepath.Join(ckptDir, "*.ckpt")); len(names) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint was written")
		}
		time.Sleep(time.Millisecond)
	}
	s1.Close()

	_, base2 := newTestServer(t, Options{
		Workers: 1, CacheDir: dir, CheckpointInterval: 4096,
	})
	waitDone(t, base2, sr.ID)
	tv := timelineOf(t, base2, sr.ID)
	acc, res, fin := firstEvent(tv.Events, "accepted"), firstEvent(tv.Events, "resumed"), firstEvent(tv.Events, "finished")
	if acc < 0 || res < 0 || fin < 0 {
		t.Fatalf("recovered timeline missing accepted/resumed/finished: %+v", tv.Events)
	}
	if !(acc < res && res < fin) {
		t.Errorf("recovered timeline out of order (accepted %d, resumed %d, finished %d)", acc, res, fin)
	}
	if d := tv.Events[acc].Detail; !strings.Contains(d, "recovered") {
		t.Errorf("recovered accept detail = %q", d)
	}
}

// stubRun is an instant fake simulation for HTTP-surface tests.
func stubRun(ctx context.Context, j allarm.Job) (*allarm.Result, error) {
	return &allarm.Result{Benchmark: j.WorkloadName(), PolicyUsed: j.Config.Policy, Events: 7, RuntimeNs: 1000}, nil
}

// smallRequest is a two-job stub sweep.
func smallRequest() SweepRequest {
	return SweepRequest{
		Benchmarks: []string{"barnes"},
		Policies:   []string{"baseline", "allarm"},
		Config:     &ConfigOverrides{Threads: 2, AccessesPerThread: 100},
	}
}

// TestMetricsPrometheusEndpoint pins format negotiation on GET /metrics:
// the default stays the JSON object, ?format=prometheus and a
// text/plain Accept select exposition text carrying the histogram
// families, and the JSON keeps its existing field names.
func TestMetricsPrometheusEndpoint(t *testing.T) {
	_, base := newTestServer(t, Options{Workers: 2, RunJob: stubRun})
	sr := submit(t, base, smallRequest())
	waitDone(t, base, sr.ID)

	resp, body := get(t, base+"/metrics?format=prometheus")
	if ct := resp.Header.Get("Content-Type"); ct != obs.PrometheusContentType {
		t.Fatalf("Content-Type = %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE allarm_jobs_run_total counter",
		"# TYPE allarm_job_duration_seconds histogram",
		"allarm_job_duration_seconds_bucket{le=\"+Inf\"} 2",
		"allarm_job_duration_seconds_count 2",
		"# TYPE allarm_job_queue_wait_seconds histogram",
		"# TYPE allarm_sweeps_active gauge",
		"allarm_jobs_run_total 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Accept negotiation selects the same text; explicit format=json wins
	// over Accept.
	if resp, _ := get(t, base+"/metrics", "Accept", "text/plain"); resp.Header.Get("Content-Type") != obs.PrometheusContentType {
		t.Errorf("Accept: text/plain did not select exposition text")
	}
	if _, body := get(t, base+"/metrics?format=json", "Accept", "text/plain"); !json.Valid(body) {
		t.Errorf("format=json did not return JSON: %s", body)
	}

	// The default JSON shape: existing fields unchanged, new rate fields
	// populated consistently.
	var m Metrics
	_, body = get(t, base+"/metrics")
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.JobsRun != 2 || m.SweepsSubmitted != 1 {
		t.Errorf("JSON metrics: %+v", m)
	}
	if m.UptimeSeconds <= 0 {
		t.Errorf("uptime_seconds = %v", m.UptimeSeconds)
	}
}

// TestObservabilityAdminGating: with -auth configured, the timeline and
// pprof endpoints demand the admin scope — 401 unauthenticated, 403 for
// plain clients, 200 for admins. Without a Guard both are open.
func TestObservabilityAdminGating(t *testing.T) {
	g, err := NewGuard([]ClientConfig{
		{Token: "plain-token", Name: "ci"},
		{Token: "admin-token", Name: "ops", Admin: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, base := newTestServer(t, Options{Workers: 1, RunJob: stubRun, Guard: g})

	resp, _ := postJSON(t, base+"/v1/sweeps", smallRequest())
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated submit: %d", resp.StatusCode)
	}
	req, _ := http.NewRequest("POST", base+"/v1/sweeps", strings.NewReader(`{"benchmarks":["barnes"],"policies":["baseline"],"config":{"threads":2,"accesses_per_thread":100}}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Authorization", "Bearer admin-token")
	hr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var sr SubmitResponse
	if err := json.NewDecoder(hr.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusAccepted {
		t.Fatalf("admin submit: %d", hr.StatusCode)
	}

	for _, path := range []string{"/v1/sweeps/" + sr.ID + "/timeline", "/debug/pprof/"} {
		if resp, _ := get(t, base+path); resp.StatusCode != http.StatusUnauthorized {
			t.Errorf("%s unauthenticated: %d, want 401", path, resp.StatusCode)
		}
		if resp, _ := get(t, base+path, "Authorization", "Bearer plain-token"); resp.StatusCode != http.StatusForbidden {
			t.Errorf("%s plain client: %d, want 403", path, resp.StatusCode)
		}
		if resp, _ := get(t, base+path, "Authorization", "Bearer admin-token"); resp.StatusCode != http.StatusOK {
			t.Errorf("%s admin: %d, want 200", path, resp.StatusCode)
		}
	}

	// Open by default: no Guard means no scopes to enforce.
	_, openBase := newTestServer(t, Options{Workers: 1, RunJob: stubRun})
	osr := submit(t, openBase, smallRequest())
	waitDone(t, openBase, osr.ID)
	if resp, _ := get(t, openBase+"/v1/sweeps/"+osr.ID+"/timeline"); resp.StatusCode != http.StatusOK {
		t.Errorf("timeline without auth: %d", resp.StatusCode)
	}
	if resp, _ := get(t, openBase+"/debug/pprof/"); resp.StatusCode != http.StatusOK {
		t.Errorf("pprof without auth: %d", resp.StatusCode)
	}
}

// TestRequestIDEchoedAndAdopted: the daemon mints an id when the caller
// sends none and adopts the caller's when present, echoing it either way.
func TestRequestIDEchoedAndAdopted(t *testing.T) {
	_, base := newTestServer(t, Options{Workers: 1, RunJob: stubRun})
	resp, _ := get(t, base+"/v1/policies")
	if resp.Header.Get(obs.RequestIDHeader) == "" {
		t.Error("no request id minted")
	}
	resp, _ = get(t, base+"/v1/policies", obs.RequestIDHeader, "caller-chosen-id")
	if got := resp.Header.Get(obs.RequestIDHeader); got != "caller-chosen-id" {
		t.Errorf("caller id not adopted: %q", got)
	}
}
