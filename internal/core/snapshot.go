package core

import (
	"fmt"
	"sort"

	"allarm/internal/cache"
	"allarm/internal/checkpoint"
	"allarm/internal/coherence"
	"allarm/internal/mem"
	"allarm/internal/sim"
)

// Checkpoint support for the directory controller. A directory's live
// state is its probe filter, the DRAM version shadow, the per-line
// transaction table (busy) and waiter queues, plus the occupancy clock
// and counters. Each in-flight transaction owns at most one request
// message, each waiter queue owns its queued requests, and each pending
// evAck event owns its ack — so messages serialize inline with exactly
// one owner and restore without pools.
//
// Stale events need care: a dirEvent whose transaction restarted (new
// id) or finished must still fire and drop itself, because dropped
// events count toward the engine's fired total and the budget
// accounting must replay bit-identically. Decode therefore binds an
// event to the live busy[addr] transaction when one exists (an id
// mismatch then reproduces the drop), and to a dummy transaction with
// id 0 otherwise — real ids start at 1, so the pointer/id check in
// Handle discards it exactly as the original would have been.

// PolicyStateCodec is implemented by stateful allocation policies that
// need their decision state carried across a checkpoint (for example, a
// policy that remembers which lines have proven sharing). Stateless
// policies need not implement it.
type PolicyStateCodec interface {
	// SavePolicyState returns an opaque, deterministic serialization of
	// the policy's mutable state.
	SavePolicyState() ([]byte, error)
	// LoadPolicyState overwrites the policy's mutable state.
	LoadPolicyState(data []byte) error
}

// DirEventOwner reports whether h is a directory event record and, if
// so, which node's directory owns it.
func DirEventOwner(h sim.Handler) (mem.NodeID, bool) {
	if ev, ok := h.(*dirEvent); ok {
		return ev.d.cfg.Node, true
	}
	return 0, false
}

// EncodeEvent writes the payload of a pending directory event owned by
// this controller (the owning node is written by the caller).
func (d *DirCtrl) EncodeEvent(e *checkpoint.Encoder, h sim.Handler) {
	ev := h.(*dirEvent)
	e.U8(ev.kind)
	if ev.kind == evAck {
		coherence.EncodeMsg(e, ev.m)
		return
	}
	// The transaction is identified by address and id; decode re-binds
	// it to the restored busy table.
	e.U64(uint64(ev.t.addr))
	e.U64(ev.id)
}

// DecodeEvent rebuilds a pending directory event for this controller.
// It must run after DecodeState so the busy table is populated.
func (d *DirCtrl) DecodeEvent(dec *checkpoint.Decoder) (sim.Handler, error) {
	kind := dec.U8()
	if err := dec.Err(); err != nil {
		return nil, err
	}
	ev := d.events.Get()
	ev.d, ev.kind = d, kind
	if kind == evAck {
		m := coherence.DecodeMsg(dec)
		if err := dec.Err(); err != nil {
			return nil, err
		}
		if m == nil {
			return nil, fmt.Errorf("core: pending ack event without a message")
		}
		ev.m = m
		return ev, nil
	}
	if kind > evRetry {
		return nil, fmt.Errorf("core: unknown directory event kind %d", kind)
	}
	addr := mem.PAddr(dec.U64())
	id := dec.U64()
	if err := dec.Err(); err != nil {
		return nil, err
	}
	if t, ok := d.busy[addr]; ok {
		// Bind to the live transaction. If the encoded id differs (the
		// txn restarted before the snapshot), Handle's id check drops
		// the event exactly as it would have in the original run.
		ev.t, ev.id = t, id
		return ev, nil
	}
	// The transaction finished before the snapshot: the event was stale
	// when captured. A placeholder with id 0 (real ids start at 1) can
	// never match a busy entry, so Handle drops it while still counting
	// it as fired.
	ph := d.txns.Get()
	*ph = txn{addr: addr}
	ev.t, ev.id = ph, id
	return ev, nil
}

// EncodeState writes the directory's full mutable state. Maps are
// emitted in ascending address order so the byte stream is
// deterministic.
func (d *DirCtrl) EncodeState(e *checkpoint.Encoder) error {
	e.Section("dirctrl")

	// Allocation policy: name always (verified on decode), state only
	// when the policy is stateful.
	e.String(d.alloc.Name())
	if codec, ok := d.alloc.(PolicyStateCodec); ok {
		state, err := codec.SavePolicyState()
		if err != nil {
			return fmt.Errorf("core: policy %q state: %w", d.alloc.Name(), err)
		}
		e.Bool(true)
		e.Bytes(state)
	} else {
		e.Bool(false)
	}

	e.I64(int64(d.nextFree))
	e.U64(d.txnSeq)
	checkpoint.EncodeStruct(e, &d.stats)

	// Probe filter: every slot in raw array order (valid bits and LRU
	// ages included, so replacement replays identically).
	e.Section("pf")
	e.U64(d.pf.tick)
	checkpoint.EncodeStruct(e, &d.pf.stats)
	e.Len(len(d.pf.entries))
	for i := range d.pf.entries {
		en := &d.pf.entries[i]
		e.U64(uint64(en.Addr))
		e.U8(uint8(en.State))
		e.I64(int64(en.Owner))
		e.Bool(en.valid)
		e.U64(en.lru)
	}

	// DRAM version shadow.
	e.Section("dramver")
	addrs := make([]mem.PAddr, 0, len(d.dramVer))
	for a := range d.dramVer {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	e.Len(len(addrs))
	for _, a := range addrs {
		e.U64(uint64(a))
		e.U64(d.dramVer[a])
	}

	// Busy transactions.
	e.Section("busy")
	addrs = addrs[:0]
	for a := range d.busy {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	e.Len(len(addrs))
	for _, a := range addrs {
		encodeTxn(e, d.busy[a])
	}

	// Waiter queues (FIFO order preserved within each queue).
	e.Section("waiters")
	addrs = addrs[:0]
	for a := range d.waiters {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	e.Len(len(addrs))
	for _, a := range addrs {
		q := d.waiters[a]
		e.U64(uint64(a))
		e.Len(len(q))
		for _, m := range q {
			coherence.EncodeMsg(e, m)
		}
	}
	return nil
}

// DecodeState overwrites the directory's mutable state. The controller
// must have been constructed with the same configuration (node, probe
// filter geometry, allocation policy) the checkpoint was taken with.
func (d *DirCtrl) DecodeState(dec *checkpoint.Decoder) error {
	dec.Expect("dirctrl")

	name := dec.String()
	hasPolState := dec.Bool()
	if err := dec.Err(); err != nil {
		return err
	}
	if name != d.alloc.Name() {
		return fmt.Errorf("core: checkpoint policy %q, directory has %q", name, d.alloc.Name())
	}
	if hasPolState {
		state := dec.Bytes()
		if err := dec.Err(); err != nil {
			return err
		}
		codec, ok := d.alloc.(PolicyStateCodec)
		if !ok {
			return fmt.Errorf("core: checkpoint carries state for policy %q, which has none", name)
		}
		if err := codec.LoadPolicyState(state); err != nil {
			return fmt.Errorf("core: policy %q state: %w", name, err)
		}
	}

	d.nextFree = sim.Time(dec.I64())
	d.txnSeq = dec.U64()
	checkpoint.DecodeStruct(dec, &d.stats)

	dec.Expect("pf")
	d.pf.tick = dec.U64()
	checkpoint.DecodeStruct(dec, &d.pf.stats)
	n := dec.Len(len(d.pf.entries))
	if err := dec.Err(); err != nil {
		return err
	}
	if n != len(d.pf.entries) {
		return fmt.Errorf("core: checkpoint has %d probe-filter entries, filter has %d", n, len(d.pf.entries))
	}
	for i := range d.pf.entries {
		en := &d.pf.entries[i]
		en.Addr = mem.PAddr(dec.U64())
		en.State = EntryState(dec.U8())
		en.Owner = mem.NodeID(dec.I64())
		en.valid = dec.Bool()
		en.lru = dec.U64()
	}

	dec.Expect("dramver")
	n = dec.Len(maxTableEntries)
	if err := dec.Err(); err != nil {
		return err
	}
	d.dramVer = make(map[mem.PAddr]uint64, n)
	for i := 0; i < n; i++ {
		a := mem.PAddr(dec.U64())
		d.dramVer[a] = dec.U64()
	}

	dec.Expect("busy")
	n = dec.Len(maxTableEntries)
	if err := dec.Err(); err != nil {
		return err
	}
	d.busy = make(map[mem.PAddr]*txn, n)
	for i := 0; i < n; i++ {
		t := d.txns.Get()
		decodeTxn(dec, t)
		if err := dec.Err(); err != nil {
			return err
		}
		d.busy[t.addr] = t
	}

	dec.Expect("waiters")
	n = dec.Len(maxTableEntries)
	if err := dec.Err(); err != nil {
		return err
	}
	d.waiters = make(map[mem.PAddr][]*coherence.Msg, n)
	for i := 0; i < n; i++ {
		a := mem.PAddr(dec.U64())
		q := dec.Len(maxTableEntries)
		if err := dec.Err(); err != nil {
			return err
		}
		msgs := make([]*coherence.Msg, 0, q)
		for j := 0; j < q; j++ {
			m := coherence.DecodeMsg(dec)
			if err := dec.Err(); err != nil {
				return err
			}
			if m == nil {
				return fmt.Errorf("core: nil message in waiter queue for %#x", uint64(a))
			}
			msgs = append(msgs, m)
		}
		d.waiters[a] = msgs
	}
	return dec.Err()
}

// maxTableEntries bounds decoded map sizes against corrupt counts; far
// above anything a real machine produces (tables are bounded by the
// probe filter and per-line serialization).
const maxTableEntries = 1 << 24

func encodeTxn(e *checkpoint.Encoder, t *txn) {
	e.U64(t.id)
	e.U8(uint8(t.kind))
	e.U64(uint64(t.addr))
	coherence.EncodeMsg(e, t.req)
	e.Bool(t.counted)
	e.I64(int64(t.pendingAcks))
	e.I64(int64(t.expectOwner))
	e.Bool(t.haveExpect)
	e.Bool(t.directed)
	e.Bool(t.needData)
	e.U8(uint8(t.grant))
	e.Bool(t.dramDone)
	e.I64(int64(t.dramDoneAt))
	e.Bool(t.dataSent)
	e.Bool(t.dataForwarded)
	e.Bool(t.cmpReceived)
	e.Bool(t.parked)
	e.Bool(t.entryTouched)
	e.I64(int64(t.putSrc))
	e.Bool(t.localProbe)
	e.Bool(t.localProbeDone)
	e.Bool(t.localProbeHit)
	e.I64(int64(t.localProbeAt))
	e.Bool(t.untracked)
	e.Bool(t.noFill)
	e.Bool(t.decided)
	e.U8(uint8(t.action))
	e.Bool(t.finalValid)
	e.U8(uint8(t.finalState))
	e.I64(int64(t.finalOwner))
}

func decodeTxn(d *checkpoint.Decoder, t *txn) {
	*t = txn{}
	t.id = d.U64()
	t.kind = txnKind(d.U8())
	t.addr = mem.PAddr(d.U64())
	t.req = coherence.DecodeMsg(d)
	t.counted = d.Bool()
	t.pendingAcks = int(d.I64())
	t.expectOwner = mem.NodeID(d.I64())
	t.haveExpect = d.Bool()
	t.directed = d.Bool()
	t.needData = d.Bool()
	t.grant = cache.State(d.U8())
	t.dramDone = d.Bool()
	t.dramDoneAt = sim.Time(d.I64())
	t.dataSent = d.Bool()
	t.dataForwarded = d.Bool()
	t.cmpReceived = d.Bool()
	t.parked = d.Bool()
	t.entryTouched = d.Bool()
	t.putSrc = mem.NodeID(d.I64())
	t.localProbe = d.Bool()
	t.localProbeDone = d.Bool()
	t.localProbeHit = d.Bool()
	t.localProbeAt = sim.Time(d.I64())
	t.untracked = d.Bool()
	t.noFill = d.Bool()
	t.decided = d.Bool()
	t.action = MissAction(d.U8())
	t.finalValid = d.Bool()
	t.finalState = EntryState(d.U8())
	t.finalOwner = mem.NodeID(d.I64())
}
