// Package noc models the on-chip interconnect of the simulated machine: a
// 2D mesh with dimension-ordered (XY) routing, per-link serialization and
// contention, and flit-level traffic accounting for the energy model.
//
// The model is message-level: a message's latency is
//
//	hops × linkLatency + serialization + contention waits
//
// which matches wormhole switching to first order (the serialization
// delay is paid once because flits pipeline across hops). Individual
// flits are accounted (for traffic and dynamic energy) but not routed.
package noc

import (
	"fmt"

	"allarm/internal/mem"
	"allarm/internal/sim"
)

// Class distinguishes message sizes for accounting (Table I: 8-byte
// control messages, 72-byte data messages).
type Class uint8

const (
	// Control is a coherence request, probe, or acknowledgement.
	Control Class = iota
	// Data is a message carrying a full cache line.
	Data
)

// String implements fmt.Stringer.
func (c Class) String() string {
	if c == Control {
		return "ctrl"
	}
	return "data"
}

// Config describes the mesh geometry and link parameters.
type Config struct {
	// Width and Height give the mesh dimensions (paper: 4×4).
	Width, Height int
	// LinkLatency is the per-hop traversal latency (paper: 10 ns).
	LinkLatency sim.Time
	// LinkBandwidth is per-link bandwidth in bytes per nanosecond
	// (paper: 8 GB/s = 8 bytes/ns).
	LinkBandwidth float64
	// FlitBytes is the flit size for traffic accounting (paper: 4 bytes).
	FlitBytes int
	// ControlBytes and DataBytes are message sizes (paper: 8 and 72).
	ControlBytes, DataBytes int
	// LocalLatency is the node-internal delivery latency when source and
	// destination are the same node (no NoC traversal, no traffic).
	LocalLatency sim.Time
}

// Validate reports a descriptive error for inconsistent configurations.
func (c Config) Validate() error {
	switch {
	case c.Width <= 0 || c.Height <= 0:
		return fmt.Errorf("noc: mesh dimensions %dx%d invalid", c.Width, c.Height)
	case c.LinkLatency < 0 || c.LocalLatency < 0:
		return fmt.Errorf("noc: negative latency")
	case c.LinkBandwidth <= 0:
		return fmt.Errorf("noc: link bandwidth must be positive")
	case c.FlitBytes <= 0:
		return fmt.Errorf("noc: flit size must be positive")
	case c.ControlBytes <= 0 || c.DataBytes < c.ControlBytes:
		return fmt.Errorf("noc: message sizes must satisfy 0 < control <= data")
	}
	return nil
}

// Stats accumulates interconnect traffic.
type Stats struct {
	Messages    uint64
	CtrlMsgs    uint64
	DataMsgs    uint64
	Bytes       uint64
	Flits       uint64
	FlitHops    uint64 // Σ flits × hops: the dynamic-energy driver
	RouterXings uint64 // Σ flits × (hops+1): router traversals
	LocalMsgs   uint64 // node-internal deliveries (no NoC traversal)
}

// Mesh is the interconnect instance.
type Mesh struct {
	cfg   Config
	free  []sim.Time // per directed link: next time the link is free
	route []int      // scratch: the in-flight message's XY route
	stats Stats
}

// New constructs a mesh from cfg. It panics on invalid configuration
// (configuration is validated at the facade; this is an internal type).
func New(cfg Config) *Mesh {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	// Four directed links per node (E, W, N, S); edge links exist in the
	// slice but are never used by XY routing. The route scratch buffer is
	// sized for the longest XY route so Send never grows it.
	return &Mesh{
		cfg:   cfg,
		free:  make([]sim.Time, cfg.Width*cfg.Height*4),
		route: make([]int, 0, cfg.Width+cfg.Height),
	}
}

// Config returns the mesh configuration.
func (m *Mesh) Config() Config { return m.cfg }

// Stats returns a copy of accumulated traffic statistics.
func (m *Mesh) Stats() Stats { return m.stats }

// ResetStats zeroes traffic counters; link occupancy state is kept.
func (m *Mesh) ResetStats() { m.stats = Stats{} }

// Nodes returns the number of mesh nodes.
func (m *Mesh) Nodes() int { return m.cfg.Width * m.cfg.Height }

func (m *Mesh) coords(n mem.NodeID) (x, y int) {
	return int(n) % m.cfg.Width, int(n) / m.cfg.Width
}

// Hops returns the XY-route hop count between two nodes (Manhattan
// distance).
func (m *Mesh) Hops(src, dst mem.NodeID) int {
	sx, sy := m.coords(src)
	dx, dy := m.coords(dst)
	return abs(sx-dx) + abs(sy-dy)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Directed-link direction indices.
const (
	dirE = iota
	dirW
	dirN
	dirS
)

func (m *Mesh) linkID(node mem.NodeID, dir int) int { return int(node)*4 + dir }

// xyRoute appends the directed links of the XY route src→dst to buf.
func (m *Mesh) xyRoute(src, dst mem.NodeID, buf []int) []int {
	x, y := m.coords(src)
	dx, dy := m.coords(dst)
	n := src
	for x != dx {
		if x < dx {
			buf = append(buf, m.linkID(n, dirE))
			x++
		} else {
			buf = append(buf, m.linkID(n, dirW))
			x--
		}
		n = mem.NodeID(y*m.cfg.Width + x)
	}
	for y != dy {
		if y < dy {
			buf = append(buf, m.linkID(n, dirS))
			y++
		} else {
			buf = append(buf, m.linkID(n, dirN))
			y--
		}
		n = mem.NodeID(y*m.cfg.Width + x)
	}
	return buf
}

// BytesFor returns the wire size of a message of the given class.
func (m *Mesh) BytesFor(c Class) int {
	if c == Control {
		return m.cfg.ControlBytes
	}
	return m.cfg.DataBytes
}

// FlitsFor returns the flit count of a message of the given class.
func (m *Mesh) FlitsFor(c Class) int {
	b := m.BytesFor(c)
	return (b + m.cfg.FlitBytes - 1) / m.cfg.FlitBytes
}

// MinCrossLatency returns the smallest latency any node-to-node
// (src != dst) message can have: one hop of link latency plus the
// serialization time of the smallest (control) message, with no
// contention. It is the lookahead bound of conservative parallel
// simulation: a message sent at time t cannot influence another tile
// before t + MinCrossLatency, so shards may drain events independently
// within windows of that width.
func (m *Mesh) MinCrossLatency() sim.Time {
	ser := sim.Time(float64(m.cfg.ControlBytes) / m.cfg.LinkBandwidth * float64(sim.Nanosecond))
	return m.cfg.LinkLatency + ser
}

// AbsorbLocalMsgs folds node-internal deliveries counted outside the
// mesh into its statistics. Parallel machines deliver same-node
// messages on the owning shard without touching the mesh (no link
// state is involved) and account them here at collection and
// checkpoint boundaries, keeping Stats and the checkpoint format
// identical to a serial run's.
func (m *Mesh) AbsorbLocalMsgs(n uint64) { m.stats.LocalMsgs += n }

// Send accounts for one message injected at time now and returns its
// arrival time at dst. Node-internal messages (src == dst) are delivered
// after LocalLatency and generate no NoC traffic.
//
// Contention: each directed link on the XY route is occupied for the
// message's serialization time; a message waits for the link to free
// before its head flit advances. Messages on the same route therefore
// arrive in FIFO order.
func (m *Mesh) Send(now sim.Time, src, dst mem.NodeID, class Class) sim.Time {
	if src == dst {
		m.stats.LocalMsgs++
		return now + m.cfg.LocalLatency
	}
	bytes := m.BytesFor(class)
	flits := m.FlitsFor(class)
	ser := sim.Time(float64(bytes) / m.cfg.LinkBandwidth * float64(sim.Nanosecond))

	links := m.xyRoute(src, dst, m.route[:0])
	m.route = links[:0]
	t := now
	for _, l := range links {
		start := t
		if m.free[l] > start {
			start = m.free[l]
		}
		m.free[l] = start + ser
		t = start + m.cfg.LinkLatency
	}
	arrival := t + ser // tail flit trails the head by the serialization time

	hops := uint64(len(links))
	m.stats.Messages++
	if class == Control {
		m.stats.CtrlMsgs++
	} else {
		m.stats.DataMsgs++
	}
	m.stats.Bytes += uint64(bytes)
	m.stats.Flits += uint64(flits)
	m.stats.FlitHops += uint64(flits) * hops
	m.stats.RouterXings += uint64(flits) * (hops + 1)
	return arrival
}
