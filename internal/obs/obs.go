// Package obs is the fleet's dependency-free observability kit: an
// atomic metrics registry (counters, gauges, lock-free log-scale
// histograms) with Prometheus v0.0.4 text exposition, HTTP middleware
// that mints X-Allarm-Request-Id correlation ids and emits structured
// request logs with per-route latency histograms, and a per-sweep
// lifecycle timeline recorder. Everything here is stdlib-only and
// allocation-light: recording a counter or histogram sample is a
// couple of atomic adds, so instrumentation can sit at job and HTTP
// boundaries without touching the simulator hot path.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// A Label is one name="value" pair attached to a metric series.
type Label struct {
	Name  string
	Value string
}

// Counter is a monotonically increasing uint64. Its method set mirrors
// atomic.Uint64 so existing metric structs can swap their fields to
// *Counter without touching call sites.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Histogram is a lock-free histogram over raw uint64 samples
// (nanoseconds, bytes, ...). Bucket upper bounds are fixed at
// construction; recording a sample is one binary search over a few
// dozen bounds plus three atomic adds. Scale converts raw sample units
// to the exposed unit at exposition time (1e-9 renders nanosecond
// samples as seconds), so the record path never touches floats.
type Histogram struct {
	bounds []uint64        // strictly increasing upper bounds (raw units)
	counts []atomic.Uint64 // len(bounds)+1; last bucket is +Inf
	sum    atomic.Uint64   // total of raw samples
	scale  float64
}

// Observe records one raw sample.
func (h *Histogram) Observe(v uint64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// ObserveSince records the elapsed time since t0 as nanoseconds.
func (h *Histogram) ObserveSince(t0 time.Time) {
	h.Observe(uint64(time.Since(t0).Nanoseconds()))
}

// Count returns the total number of recorded samples.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all samples in exposed (scaled) units.
func (h *Histogram) Sum() float64 { return float64(h.sum.Load()) * h.scale }

// ExpBuckets returns doubling bucket bounds from lo until hi is
// covered, for Histogram construction: lo, 2lo, 4lo, ... >= hi.
func ExpBuckets(lo, hi uint64) []uint64 {
	if lo == 0 {
		lo = 1
	}
	var out []uint64
	for b := lo; ; b *= 2 {
		out = append(out, b)
		if b >= hi || b > 1<<62 {
			return out
		}
	}
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindCounterFunc
	kindGauge
	kindHistogram
)

type metric struct {
	name   string
	help   string
	labels []Label
	kind   metricKind
	c      *Counter
	fn     func() float64
	h      *Histogram
}

// Registry holds metric series in registration order and renders them
// as Prometheus text exposition. Registration is rare and mutex-
// guarded; reads on the record path go straight to the returned
// Counter/Histogram and never touch the registry lock.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	seen    map[string]metricKind // family name -> kind, for conflict checks
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{seen: make(map[string]metricKind)}
}

func (r *Registry) add(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if k, ok := r.seen[m.name]; ok && k != m.kind {
		panic(fmt.Sprintf("obs: metric %q registered as two different kinds", m.name))
	}
	r.seen[m.name] = m.kind
	r.metrics = append(r.metrics, m)
}

// Counter registers a counter series and returns it. The name should
// follow Prometheus conventions (snake_case, `_total` suffix).
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.add(&metric{name: name, help: help, labels: labels, kind: kindCounter, c: c})
	return c
}

// CounterFunc registers a counter series whose value is computed at
// exposition time — for monotonic values owned elsewhere (e.g. a raw
// nanosecond total exposed as seconds).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.add(&metric{name: name, help: help, labels: labels, kind: kindCounterFunc, fn: fn})
}

// Gauge registers a gauge series whose value is computed at exposition
// time.
func (r *Registry) Gauge(name, help string, fn func() float64, labels ...Label) {
	r.add(&metric{name: name, help: help, labels: labels, kind: kindGauge, fn: fn})
}

// Histogram registers a histogram series over raw uint64 samples with
// the given bucket upper bounds (raw units) and returns it. scale
// converts raw units to the exposed unit (use 1e-9 for nanosecond
// samples exposed as seconds, 1 for bytes).
func (r *Registry) Histogram(name, help string, scale float64, bounds []uint64, labels ...Label) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not strictly increasing", name))
		}
	}
	h := &Histogram{
		bounds: append([]uint64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
		scale:  scale,
	}
	r.add(&metric{name: name, help: help, labels: labels, kind: kindHistogram, h: h})
	return h
}
