package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"
)

// Guard is the multi-tenant front door shared by allarm-serve and
// allarm-router: per-client bearer-token authentication, token-bucket
// rate limiting per client, and a per-sweep job-count quota the submit
// handlers enforce. It wraps a daemon's whole handler; the operational
// endpoints every fleet peer must reach unauthenticated — /healthz
// (router health polling), /metrics (scrapes) and /v1/version (build
// skew checks) — bypass it.
//
// A nil *Guard is an open door: every method degrades to "allow", so
// callers never need to branch on whether auth is configured.
type Guard struct {
	clients map[string]*guardClient // bearer token → client
}

// ClientConfig is one entry of the -auth tokens file: a client's
// credential and its limits.
type ClientConfig struct {
	// Token is the bearer credential (required, unique).
	Token string `json:"token"`
	// Name identifies the client in errors and logs (required).
	Name string `json:"name"`
	// MaxJobs caps the expanded job count of one sweep submission
	// (0 = unlimited).
	MaxJobs int `json:"max_jobs,omitempty"`
	// Admin grants the operational scope: fleet-membership mutations
	// (allarm-router's POST/DELETE /v1/shards) require it. Ordinary
	// sweep submission does not.
	Admin bool `json:"admin,omitempty"`
	// Rate is the client's sustained request rate in requests/second
	// (token-bucket refill). 0 with Burst 0 means unlimited; 0 with a
	// positive Burst means a fixed, non-refilling budget (tests).
	Rate float64 `json:"rate,omitempty"`
	// Burst is the token-bucket capacity (instantaneous burst). 0 with a
	// positive Rate defaults to max(1, Rate).
	Burst int `json:"burst,omitempty"`
}

// guardClient is one authenticated principal and its token bucket.
type guardClient struct {
	name    string
	maxJobs int
	admin   bool

	unlimited bool
	mu        sync.Mutex
	tokens    float64
	burst     float64
	rate      float64 // tokens per second
	last      time.Time
}

// NewGuard builds a Guard from client configs (empty/duplicate tokens
// and empty names are configuration errors, caught at startup rather
// than at request time).
func NewGuard(clients []ClientConfig) (*Guard, error) {
	g := &Guard{clients: make(map[string]*guardClient, len(clients))}
	for i, c := range clients {
		if c.Token == "" {
			return nil, fmt.Errorf("auth: client %d: empty token", i)
		}
		if c.Name == "" {
			return nil, fmt.Errorf("auth: client %d: empty name", i)
		}
		if _, dup := g.clients[c.Token]; dup {
			return nil, fmt.Errorf("auth: client %q: duplicate token", c.Name)
		}
		burst := float64(c.Burst)
		if c.Burst == 0 && c.Rate > 0 {
			burst = c.Rate
			if burst < 1 {
				burst = 1
			}
		}
		g.clients[c.Token] = &guardClient{
			name:      c.Name,
			maxJobs:   c.MaxJobs,
			admin:     c.Admin,
			unlimited: c.Rate == 0 && c.Burst == 0,
			tokens:    burst,
			burst:     burst,
			rate:      c.Rate,
			last:      time.Now(),
		}
	}
	return g, nil
}

// LoadGuard reads a JSON array of ClientConfig from path (the -auth
// flag of both daemons).
func LoadGuard(path string) (*Guard, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("auth: %w", err)
	}
	var clients []ClientConfig
	if err := json.Unmarshal(data, &clients); err != nil {
		return nil, fmt.Errorf("auth: %s: %w", path, err)
	}
	if len(clients) == 0 {
		return nil, fmt.Errorf("auth: %s: no clients configured", path)
	}
	return NewGuard(clients)
}

// allow takes one token from the client's bucket, reporting false when
// the client is over its rate.
func (c *guardClient) allow(now time.Time) bool {
	if c.unlimited {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rate > 0 {
		c.tokens += now.Sub(c.last).Seconds() * c.rate
		if c.tokens > c.burst {
			c.tokens = c.burst
		}
	}
	c.last = now
	if c.tokens < 1 {
		return false
	}
	c.tokens--
	return true
}

// guardCtxKey carries the authenticated client through the request
// context to the submit handlers (quota enforcement).
type guardCtxKey struct{}

// Client is the authenticated principal of a request.
type Client struct {
	Name    string
	MaxJobs int
	Admin   bool
}

// ClientFromRequest returns the authenticated client of r, or ok ==
// false when the daemon runs without a Guard (open access).
func ClientFromRequest(r *http.Request) (Client, bool) {
	c, ok := r.Context().Value(guardCtxKey{}).(Client)
	return c, ok
}

// openPath reports whether the path bypasses authentication: the
// endpoints fleet peers and monitoring must reach without credentials.
func openPath(path string) bool {
	switch path {
	case "/healthz", "/metrics", "/v1/version":
		return true
	}
	return false
}

// Wrap authenticates and rate-limits every request through next. A nil
// Guard returns next unchanged.
func (g *Guard) Wrap(next http.Handler) http.Handler {
	if g == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if openPath(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		token, ok := bearerToken(r)
		if !ok {
			w.Header().Set("WWW-Authenticate", `Bearer realm="allarm"`)
			writeError(w, http.StatusUnauthorized, fmt.Errorf("missing bearer token"))
			return
		}
		c, ok := g.clients[token]
		if !ok {
			w.Header().Set("WWW-Authenticate", `Bearer realm="allarm"`)
			writeError(w, http.StatusUnauthorized, fmt.Errorf("unknown token"))
			return
		}
		if !c.allow(time.Now()) {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, fmt.Errorf("client %s over rate limit", c.name))
			return
		}
		ctx := context.WithValue(r.Context(), guardCtxKey{}, Client{Name: c.name, MaxJobs: c.maxJobs, Admin: c.admin})
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// bearerToken extracts the Authorization: Bearer credential.
func bearerToken(r *http.Request) (string, bool) {
	h := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if len(h) <= len(prefix) || !strings.EqualFold(h[:len(prefix)], prefix) {
		return "", false
	}
	return h[len(prefix):], true
}

// CheckJobQuota enforces a client's per-sweep job-count quota against
// an expanded sweep size: nil when allowed, the 403 error otherwise.
// Both submit handlers (allarm-serve and allarm-router) call it after
// expansion, which is the only point the real job count is known.
func CheckJobQuota(r *http.Request, jobs int) error {
	c, ok := ClientFromRequest(r)
	if !ok || c.MaxJobs <= 0 || jobs <= c.MaxJobs {
		return nil
	}
	return fmt.Errorf("sweep expands to %d jobs, over client %s's quota of %d", jobs, c.Name, c.MaxJobs)
}

// CheckAdmin enforces the admin scope on operational endpoints: nil
// when the request's client is an admin, or when the daemon runs
// without a Guard (an open daemon has no principals to scope). The
// caller renders the error as 403.
func CheckAdmin(r *http.Request) error {
	c, ok := ClientFromRequest(r)
	if !ok || c.Admin {
		return nil
	}
	return fmt.Errorf("client %s lacks the admin scope (membership operations need \"admin\": true in the tokens file)", c.Name)
}
