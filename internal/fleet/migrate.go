package fleet

import (
	"fmt"

	"allarm/internal/server"
)

// migrateInFlight re-homes jobs that a membership mutation orphaned:
// every non-terminal job owned by a shard that just left the fleet is
// claimed onto its key's new ring owner, its machine-state checkpoint
// (written by the old shard's -checkpoint-interval runner) is pulled
// from the departed shard and pushed to the new owner, and the job is
// re-dispatched there. The new owner's checkpoint-aware runner resumes
// from the pushed snapshot instead of simulating from event zero, so a
// planned shard retirement costs at most one checkpoint interval of
// re-simulation per in-flight job — and the gathered results stay
// byte-identical, because a resumed run is bit-identical to an
// uninterrupted one.
//
// Checkpoint transfer is best-effort: a shard that never checkpointed
// the job (checkpointing off, or the job just started), or one that is
// already unreachable, simply means the new owner starts from scratch —
// the old skip-and-requeue behavior, now the fallback rather than the
// only path.
func (rt *Router) migrateInFlight(old, cur *membership) {
	if rt.ctx.Err() != nil {
		return
	}
	departed := make(map[string]bool)
	for _, name := range old.names() {
		if cur.byName(name) == nil {
			departed[name] = true
		}
	}
	if len(departed) == 0 {
		return
	}
	rt.mu.Lock()
	sts := make([]*fleetSweep, 0, len(rt.sweeps))
	for _, st := range rt.sweeps {
		sts = append(sts, st)
	}
	rt.mu.Unlock()
	for _, st := range sts {
		rt.migrateSweep(st, old, cur, departed)
	}
}

// migrateSweep migrates one sweep's orphaned in-flight jobs.
func (rt *Router) migrateSweep(st *fleetSweep, old, cur *membership, departed map[string]bool) {
	moved := st.claimMoved(
		func(name string) bool { return departed[name] },
		func(i int) (string, bool) {
			si := cur.ring.lookup(st.expanded[i].Key(), cur.alive)
			if si < 0 {
				return "", false
			}
			return cur.shards[si].name, true
		})
	if len(moved) == 0 {
		return
	}
	groups := make(map[*shard][]int)
	for _, m := range moved {
		name := server.CheckpointName(st.expanded[m.index].Key())
		src, dst := old.byName(m.from), cur.byName(m.to)
		switch data, ok := src.fetchCheckpoint(rt.ctx, name, rt.timeout); {
		case !ok:
			rt.logf("sweep %s: job %d: no checkpoint on %s; %s re-simulates from scratch",
				st.id, m.index, m.from, m.to)
		default:
			if err := dst.pushCheckpoint(rt.ctx, name, data, rt.timeout); err != nil {
				rt.logf("sweep %s: job %d: checkpoint push to %s: %v; it re-simulates from scratch",
					st.id, m.index, m.to, err)
				break
			}
			rt.met.jobsMigrated.Add(1)
			st.timeline("migrated", m.index, m.to, fmt.Sprintf("checkpoint moved from %s (%d bytes)", m.from, len(data)))
			rt.logf("sweep %s: job %d: checkpoint migrated %s -> %s (%d bytes)",
				st.id, m.index, m.from, m.to, len(data))
		}
		groups[dst] = append(groups[dst], m.index)
	}
	rt.journalSweep(st)
	rt.logf("sweep %s: migrated %d in-flight job(s) off retired shard(s)", st.id, len(moved))
	rt.active.Add(1)
	go rt.dispatch(st, groups)
}
