package coherence

import (
	"testing"

	"allarm/internal/cache"
	"allarm/internal/mem"
	"allarm/internal/sim"
)

// fakePort records sent messages for assertions.
type fakePort struct {
	sent []*Msg
}

func (p *fakePort) Send(m *Msg) { p.sent = append(p.sent, m) }

func (p *fakePort) last() *Msg {
	if len(p.sent) == 0 {
		return nil
	}
	return p.sent[len(p.sent)-1]
}

func line(i int) mem.PAddr { return mem.PAddr(i * mem.LineBytes) }

// homeAt maps every line to node 1 (a remote home for our node-0 cache).
func homeAt(n mem.NodeID) func(mem.PAddr) mem.NodeID {
	return func(mem.PAddr) mem.NodeID { return n }
}

func newCtrl(t *testing.T) (*CacheCtrl, *fakePort, *sim.Engine) {
	t.Helper()
	eng := &sim.Engine{}
	port := &fakePort{}
	hier := cache.NewHierarchy(512, 2, 2048, 4)
	cc := NewCacheCtrl(0, hier, eng, port, homeAt(1), 1*sim.Nanosecond)
	return cc, port, eng
}

func TestReadMissSendsGetS(t *testing.T) {
	cc, port, eng := newCtrl(t)
	done := false
	cc.CoreAccess(0, line(1), false, sim.HandlerFunc(func(sim.Time) { done = true }))
	eng.Run(0)
	if done {
		t.Fatal("miss completed without a fill")
	}
	m := port.last()
	if m == nil || m.Op != GetS || !m.ToDir || m.Dst != 1 || m.Addr != line(1) {
		t.Fatalf("sent %v", m)
	}
	if !cc.HasPending() {
		t.Fatal("no MSHR allocated")
	}
}

func TestWriteMissSendsGetM(t *testing.T) {
	cc, port, eng := newCtrl(t)
	cc.CoreAccess(0, line(1), true, sim.HandlerFunc(func(sim.Time) {}))
	eng.Run(0)
	if m := port.last(); m.Op != GetM {
		t.Fatalf("sent %v", m)
	}
}

func TestFillCompletesAndAcks(t *testing.T) {
	cc, port, eng := newCtrl(t)
	var doneAt sim.Time
	cc.CoreAccess(0, line(1), false, sim.HandlerFunc(func(now sim.Time) { doneAt = now }))
	eng.Run(0)
	port.sent = nil
	cc.HandleMsg(eng.Now(), &Msg{
		Op: DataMsg, Addr: line(1), Src: 1, Dst: 0,
		Grant: cache.Exclusive, Version: 9, TxnID: 77,
	})
	eng.Run(0)
	if doneAt == 0 {
		t.Fatal("fill did not complete the access")
	}
	// The completion ack must go to the home with the transaction id.
	var cmp *Msg
	for _, m := range port.sent {
		if m.Op == CmpAck {
			cmp = m
		}
	}
	if cmp == nil || cmp.Dst != 1 || cmp.TxnID != 77 || !cmp.ToDir {
		t.Fatalf("CmpAck wrong: %v", cmp)
	}
	if st := cc.Hierarchy().ProbeState(line(1)); st != cache.Exclusive {
		t.Fatalf("state %v", st)
	}
	if cc.Hierarchy().PeekLine(line(1)).Version != 9 {
		t.Fatal("version lost")
	}
}

func TestWriteFillUpgradesToModifiedAndBumpsVersion(t *testing.T) {
	cc, _, eng := newCtrl(t)
	cc.CoreAccess(0, line(1), true, sim.HandlerFunc(func(sim.Time) {}))
	eng.Run(0)
	cc.HandleMsg(eng.Now(), &Msg{
		Op: DataMsg, Addr: line(1), Src: 1, Dst: 0,
		Grant: cache.Modified, Version: 4,
	})
	eng.Run(0)
	l := cc.Hierarchy().PeekLine(line(1))
	if l.State != cache.Modified || l.Version != 5 {
		t.Fatalf("line %+v, want M v5", l)
	}
}

func TestStoreHitBumpsVersion(t *testing.T) {
	cc, _, eng := newCtrl(t)
	cc.Hierarchy().Fill(line(2), cache.Exclusive, false, 3)
	var stored uint64
	cc.OnStore = func(addr mem.PAddr, v uint64) { stored = v }
	cc.CoreAccess(0, line(2), true, sim.HandlerFunc(func(sim.Time) {}))
	eng.Run(0)
	if stored != 4 {
		t.Fatalf("store version %d, want 4", stored)
	}
}

func TestProbeInvOnOwnerForwardsData(t *testing.T) {
	cc, port, eng := newCtrl(t)
	cc.Hierarchy().Fill(line(3), cache.Modified, false, 8)
	cc.HandleMsg(0, &Msg{
		Op: PrbInv, Addr: line(3), Src: 1, Dst: 0,
		Mode: GetM, ForwardTo: 5, Grant: cache.Modified, TxnID: 11,
	})
	eng.Run(0)
	var data, ack *Msg
	for _, m := range port.sent {
		switch m.Op {
		case DataMsg:
			data = m
		case Ack:
			ack = m
		}
	}
	if data == nil || data.Dst != 5 || data.Grant != cache.Modified || data.Version != 8 {
		t.Fatalf("forwarded data %v", data)
	}
	if ack == nil || !ack.Hit || ack.PrevState != cache.Modified || ack.TxnID != 11 {
		t.Fatalf("ack %v", ack)
	}
	if cc.Hierarchy().ProbeState(line(3)) != cache.Invalid {
		t.Fatal("line survived invalidation")
	}
}

func TestBackInvalidationReturnsDirtyData(t *testing.T) {
	cc, port, eng := newCtrl(t)
	cc.Hierarchy().Fill(line(3), cache.Modified, false, 6)
	cc.HandleMsg(0, &Msg{
		Op: PrbInv, Addr: line(3), Src: 1, Dst: 0,
		Mode: GetM, ForwardTo: NoNode, TxnID: 2,
	})
	eng.Run(0)
	m := port.last()
	if m.Op != AckData || !m.Dirty || m.Version != 6 || !m.ToDir {
		t.Fatalf("back-invalidation response %v", m)
	}
}

func TestProbeMissAcksMiss(t *testing.T) {
	cc, port, eng := newCtrl(t)
	cc.HandleMsg(0, &Msg{Op: PrbInv, Addr: line(9), Src: 1, Dst: 0, ForwardTo: NoNode})
	eng.Run(0)
	if m := port.last(); m.Op != Ack || m.Hit {
		t.Fatalf("miss probe response %v", m)
	}
}

func TestProbeDownDowngradesAndForwards(t *testing.T) {
	cc, port, eng := newCtrl(t)
	cc.Hierarchy().Fill(line(4), cache.Modified, false, 2)
	cc.HandleMsg(0, &Msg{
		Op: PrbDown, Addr: line(4), Src: 1, Dst: 0,
		Mode: GetS, ForwardTo: 7, Grant: cache.Shared,
	})
	eng.Run(0)
	if st := cc.Hierarchy().ProbeState(line(4)); st != cache.Owned {
		t.Fatalf("state after PrbDown = %v", st)
	}
	var data *Msg
	for _, m := range port.sent {
		if m.Op == DataMsg {
			data = m
		}
	}
	if data == nil || data.Grant != cache.Shared || data.Dst != 7 {
		t.Fatalf("forwarded %v", data)
	}
}

func TestPrbLocalModeSemantics(t *testing.T) {
	// Mode GetS downgrades; mode GetM invalidates.
	cc, _, eng := newCtrl(t)
	cc.Hierarchy().Fill(line(5), cache.Exclusive, true, 0)
	cc.HandleMsg(0, &Msg{Op: PrbLocal, Addr: line(5), Src: 0, Dst: 0, Mode: GetS, ForwardTo: 3, Grant: cache.Shared})
	eng.Run(0)
	if st := cc.Hierarchy().ProbeState(line(5)); st != cache.Shared {
		t.Fatalf("PrbLocal/GetS left state %v", st)
	}
	cc.HandleMsg(eng.Now(), &Msg{Op: PrbLocal, Addr: line(5), Src: 0, Dst: 0, Mode: GetM, ForwardTo: 3, Grant: cache.Modified})
	eng.Run(0)
	if st := cc.Hierarchy().ProbeState(line(5)); st != cache.Invalid {
		t.Fatalf("PrbLocal/GetM left state %v", st)
	}
}

func TestEvictionSendsPuts(t *testing.T) {
	// A tiny hierarchy forces victims quickly.
	eng := &sim.Engine{}
	port := &fakePort{}
	hier := cache.NewHierarchy(128, 2, 128, 2) // 2+2 lines
	cc := NewCacheCtrl(0, hier, eng, port, homeAt(1), 1*sim.Nanosecond)
	hier.Fill(line(0), cache.Modified, false, 9)
	hier.Fill(line(1), cache.Exclusive, false, 0)
	hier.Fill(line(2), cache.Exclusive, false, 0)
	hier.Fill(line(3), cache.Exclusive, false, 0)
	// Two more fills via the controller's fill path overflow both levels.
	for i := 4; i <= 5; i++ {
		cc.CoreAccess(eng.Now(), line(i), false, sim.HandlerFunc(func(sim.Time) {}))
		eng.Run(0)
		cc.HandleMsg(eng.Now(), &Msg{
			Op: DataMsg, Addr: line(i), Src: 1, Dst: 0, Grant: cache.Exclusive,
		})
		eng.Run(0)
	}
	var putM, putE int
	for _, m := range port.sent {
		switch m.Op {
		case PutM:
			putM++
			if m.Version != 9 || !m.Dirty {
				t.Fatalf("PutM payload %v", m)
			}
		case PutE:
			putE++
		}
	}
	if putM+putE == 0 {
		t.Fatal("no eviction notifications sent")
	}
	s := cc.Stats()
	if s.PutMs != uint64(putM) || s.PutEs != uint64(putE) {
		t.Fatalf("stats %+v vs %d/%d", s, putM, putE)
	}
}

func TestSecondOutstandingAccessPanics(t *testing.T) {
	cc, _, eng := newCtrl(t)
	cc.CoreAccess(0, line(1), false, sim.HandlerFunc(func(sim.Time) {}))
	eng.Run(0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	cc.CoreAccess(eng.Now(), line(2), false, sim.HandlerFunc(func(sim.Time) {}))
}

func TestOpClassification(t *testing.T) {
	dataOps := map[Op]bool{PutM: true, DataMsg: true, AckData: true}
	for op := GetS; op <= CmpAck; op++ {
		want := "ctrl"
		if dataOps[op] {
			want = "data"
		}
		if got := op.Class().String(); got != want {
			t.Fatalf("%v class = %v", op, got)
		}
	}
}

// TestNoFillCompletesWithoutInstalling: an uncached grant finishes the
// pending access and closes the transaction, but leaves no copy behind.
func TestNoFillCompletesWithoutInstalling(t *testing.T) {
	cc, port, eng := newCtrl(t)
	var doneAt sim.Time
	var loaded []uint64
	cc.OnLoad = func(addr mem.PAddr, version uint64) { loaded = append(loaded, version) }
	cc.CoreAccess(0, line(1), false, sim.HandlerFunc(func(now sim.Time) { doneAt = now }))
	eng.Run(0)
	port.sent = nil
	cc.HandleMsg(eng.Now(), &Msg{
		Op: DataMsg, Addr: line(1), Src: 1, Dst: 0,
		Grant: cache.Shared, Version: 4, TxnID: 9, NoFill: true,
	})
	eng.Run(0)
	if doneAt == 0 {
		t.Fatal("no-fill grant did not complete the access")
	}
	if cc.HasPending() {
		t.Fatal("MSHR still held")
	}
	if l := cc.Hierarchy().PeekLine(line(1)); l != nil {
		t.Fatalf("no-fill grant installed the line: %+v", l)
	}
	if len(loaded) != 1 || loaded[0] != 4 {
		t.Fatalf("load observed %v, want the delivered version", loaded)
	}
	cmp := port.last()
	if cmp == nil || cmp.Op != CmpAck || cmp.TxnID != 9 || !cmp.ToDir {
		t.Fatalf("no CmpAck closed the transaction: %v", cmp)
	}
	if s := cc.Stats(); s.UncachedFills != 1 || s.Fills != 0 {
		t.Fatalf("stats %+v", s)
	}
}

// TestNoFillStorePanics: writes must never be served uncached.
func TestNoFillStorePanics(t *testing.T) {
	cc, _, eng := newCtrl(t)
	cc.CoreAccess(0, line(1), true, sim.HandlerFunc(func(sim.Time) {}))
	eng.Run(0)
	defer func() {
		if recover() == nil {
			t.Fatal("no-fill store grant accepted")
		}
	}()
	cc.HandleMsg(eng.Now(), &Msg{
		Op: DataMsg, Addr: line(1), Src: 1, Dst: 0,
		Grant: cache.Modified, NoFill: true,
	})
}

// TestProbeForwardPropagatesNoFill: a PrbLocal carrying NoFill forwards
// owner data with the flag intact, so the remote requester consumes it
// uncached.
func TestProbeForwardPropagatesNoFill(t *testing.T) {
	cc, port, eng := newCtrl(t)
	// Fill the line as Modified owner first.
	cc.CoreAccess(0, line(1), true, sim.HandlerFunc(func(sim.Time) {}))
	eng.Run(0)
	cc.HandleMsg(eng.Now(), &Msg{Op: DataMsg, Addr: line(1), Src: 1, Dst: 0, Grant: cache.Modified})
	eng.Run(0)
	port.sent = nil

	cc.HandleMsg(eng.Now(), &Msg{
		Op: PrbLocal, Addr: line(1), Src: 1, Dst: 0,
		Mode: GetS, ForwardTo: 5, Grant: cache.Shared, NoFill: true, TxnID: 3,
	})
	eng.Run(0)
	var data *Msg
	for _, m := range port.sent {
		if m.Op == DataMsg {
			data = m
		}
	}
	if data == nil || data.Dst != 5 || !data.NoFill {
		t.Fatalf("forwarded data lost NoFill: %v", data)
	}
}
