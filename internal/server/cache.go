package server

import (
	"container/list"
	"sync"

	allarm "allarm"
)

// resultCache is a bounded LRU of simulation results, content-addressed
// by Job.Key. Simulations are deterministic, so a cached *Result is
// exactly what re-running the job would produce; entries are shared
// read-only with every response that hits them.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheItem struct {
	key string
	res *allarm.Result
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// Get returns the cached result for key, refreshing its recency.
func (c *resultCache) Get(key string) (*allarm.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheItem).res, true
}

// Add inserts (or refreshes) key, evicting the least recently used entry
// beyond capacity.
func (c *resultCache) Add(key string, res *allarm.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheItem).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheItem{key: key, res: res})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*cacheItem).key)
	}
}

// Len returns the number of cached entries.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// tier identifies which layer of the result store satisfied a Get.
type tier int

const (
	tierNone tier = iota // miss everywhere: the simulation must run
	tierMem              // in-memory LRU hit
	tierDisk             // disk-backend hit (promoted into the LRU)
)

// tieredStore is the two-level content-addressed result store: a
// bounded in-memory LRU in front of an optional unbounded persistent
// backend (any ResultStore — a local directory or an S3-style object
// endpoint). Reads probe memory first and promote backend hits into
// the LRU; writes go through to both, so every complete result
// survives a restart even after the LRU evicts it. With no persistent
// tier it degenerates to the plain LRU the daemon always had.
type tieredStore struct {
	lru  *resultCache
	disk ResultStore // nil = memory only
}

// Get returns the cached result for key and the tier that held it.
func (s *tieredStore) Get(key string) (*allarm.Result, tier) {
	if res, ok := s.lru.Get(key); ok {
		return res, tierMem
	}
	if s.disk != nil {
		if res, ok := s.disk.Get(key); ok {
			s.lru.Add(key, res)
			return res, tierDisk
		}
	}
	return nil, tierNone
}

// Add stores a complete result in both tiers. The disk write's error is
// returned for logging but the memory tier is always updated: a failing
// disk never blocks serving.
func (s *tieredStore) Add(key string, res *allarm.Result) error {
	s.lru.Add(key, res)
	if s.disk == nil {
		return nil
	}
	return s.disk.Put(key, res)
}

// flight is one in-progress simulation other requests for the same key
// wait on instead of re-running it.
type flight struct {
	done chan struct{} // closed when res/err are final
	res  *allarm.Result
	err  error
}

// flightGroup coalesces concurrent executions per job key (a minimal
// singleflight; no external deps). The leader of a key runs the
// simulation; followers block on the flight and share its outcome.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

// join returns the flight for key and whether the caller leads it (the
// leader must eventually call finish).
func (g *flightGroup) join(key string) (*flight, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.m == nil {
		g.m = make(map[string]*flight)
	}
	if fl, ok := g.m[key]; ok {
		return fl, false
	}
	fl := &flight{done: make(chan struct{})}
	g.m[key] = fl
	return fl, true
}

// finish publishes the leader's outcome and releases the key so a later
// identical job (on a cache miss, e.g. after LRU eviction or an error)
// starts a fresh flight.
func (g *flightGroup) finish(key string, fl *flight, res *allarm.Result, err error) {
	fl.res, fl.err = res, err
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(fl.done)
}
