package cache

import (
	"fmt"

	"allarm/internal/checkpoint"
	"allarm/internal/mem"
)

// Checkpoint support: a cache's mutable state is its line array (every
// slot, in raw array order — LRU ages and valid bits included, so
// future replacement decisions replay identically), the LRU tick and
// the statistics. Geometry (sets, ways) comes from construction and is
// only verified.

// EncodeState writes the cache's full mutable state.
func (c *Cache) EncodeState(e *checkpoint.Encoder) {
	e.Section("cache:" + c.name)
	e.U64(c.tick)
	checkpoint.EncodeStruct(e, &c.stats)
	e.Len(len(c.lines))
	for i := range c.lines {
		l := &c.lines[i]
		e.U64(uint64(l.Addr))
		e.U8(uint8(l.State))
		e.Bool(l.Untracked)
		e.U64(l.Version)
		e.Bool(l.valid)
		e.U64(l.lru)
	}
}

// DecodeState overwrites the cache's mutable state from a checkpoint.
// The cache must have the geometry the checkpoint was taken with.
func (c *Cache) DecodeState(d *checkpoint.Decoder) error {
	d.Expect("cache:" + c.name)
	c.tick = d.U64()
	checkpoint.DecodeStruct(d, &c.stats)
	n := d.Len(len(c.lines))
	if err := d.Err(); err != nil {
		return err
	}
	if n != len(c.lines) {
		return fmt.Errorf("cache %s: checkpoint has %d lines, cache has %d", c.name, n, len(c.lines))
	}
	for i := range c.lines {
		l := &c.lines[i]
		l.Addr = mem.PAddr(d.U64())
		l.State = State(d.U8())
		l.Untracked = d.Bool()
		l.Version = d.U64()
		l.valid = d.Bool()
		l.lru = d.U64()
	}
	return d.Err()
}

// EncodeState writes both levels and the hierarchy counters. The victim
// scratch buffer is transient (consumed within one access) and not part
// of machine state.
func (h *Hierarchy) EncodeState(e *checkpoint.Encoder) {
	e.Section("hier")
	checkpoint.EncodeStruct(e, &h.stats)
	h.l1.EncodeState(e)
	h.l2.EncodeState(e)
}

// DecodeState overwrites both levels and the hierarchy counters.
func (h *Hierarchy) DecodeState(d *checkpoint.Decoder) error {
	d.Expect("hier")
	checkpoint.DecodeStruct(d, &h.stats)
	if err := h.l1.DecodeState(d); err != nil {
		return err
	}
	return h.l2.DecodeState(d)
}
